#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::sim {
namespace {

using psn::time_literals::operator""_ms;
using psn::time_literals::operator""_s;

TEST(FaultPlanParseTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan("  ;  ; ").empty());
}

TEST(FaultPlanParseTest, ParsesEveryVerb) {
  const FaultPlan plan = parse_fault_plan(
      "crash:2@10+5; cut:1-3@20+4 ;drift:4@0.5+1.25:-40");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].pid, 2u);
  EXPECT_EQ(plan.crashes[0].begin, SimTime::from_seconds(10));
  EXPECT_EQ(plan.crashes[0].end, SimTime::from_seconds(15));
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].a, 1u);
  EXPECT_EQ(plan.partitions[0].b, 3u);
  EXPECT_EQ(plan.partitions[0].begin, SimTime::from_seconds(20));
  EXPECT_EQ(plan.partitions[0].end, SimTime::from_seconds(24));
  ASSERT_EQ(plan.clock_faults.size(), 1u);
  EXPECT_EQ(plan.clock_faults[0].pid, 4u);
  EXPECT_EQ(plan.clock_faults[0].begin, SimTime::from_seconds(0.5));
  EXPECT_EQ(plan.clock_faults[0].end, SimTime::from_seconds(1.75));
  EXPECT_EQ(plan.clock_faults[0].extra_drift_ppm, -40);
}

TEST(FaultPlanParseTest, RejectsMalformedClauses) {
  EXPECT_THROW(parse_fault_plan("crash"), ConfigError);          // no ':'
  EXPECT_THROW(parse_fault_plan("crash:2"), ConfigError);        // no '@'
  EXPECT_THROW(parse_fault_plan("crash:2@10"), ConfigError);     // no '+'
  EXPECT_THROW(parse_fault_plan("crash:x@10+5"), ConfigError);   // bad pid
  EXPECT_THROW(parse_fault_plan("crash:2@10+0"), ConfigError);   // zero dur
  EXPECT_THROW(parse_fault_plan("crash:2@-1+5"), ConfigError);   // negative
  EXPECT_THROW(parse_fault_plan("cut:1@10+5"), ConfigError);     // no '-'
  EXPECT_THROW(parse_fault_plan("drift:1@10+5"), ConfigError);   // no ppm
  EXPECT_THROW(parse_fault_plan("melt:1@10+5"), ConfigError);    // bad verb
}

TEST(FaultScheduleTest, ValidationRejectsNonsense) {
  // The root/back-end (process 0) is mains-powered by convention.
  EXPECT_THROW(FaultSchedule(parse_fault_plan("crash:0@1+1")), ConfigError);
  EXPECT_THROW(FaultSchedule(parse_fault_plan("cut:3-3@1+1")), ConfigError);
  EXPECT_THROW(FaultSchedule(parse_fault_plan("drift:1@1+1:0")), ConfigError);
  // Overlapping windows on the same pid / edge.
  EXPECT_THROW(FaultSchedule(parse_fault_plan("crash:2@1+4;crash:2@3+4")),
               ConfigError);
  EXPECT_THROW(FaultSchedule(parse_fault_plan("cut:1-2@1+4;cut:2-1@3+4")),
               ConfigError);
  // Touching windows ([1,5) then [5,9)) are fine.
  EXPECT_NO_THROW(FaultSchedule(parse_fault_plan("crash:2@1+4;crash:2@5+4")));
}

TEST(FaultScheduleTest, DownIsHalfOpenPerWindow) {
  const FaultSchedule sched(parse_fault_plan("crash:2@10+5;crash:2@20+1"));
  EXPECT_FALSE(sched.down(2, SimTime::from_seconds(9.999)));
  EXPECT_TRUE(sched.down(2, SimTime::from_seconds(10)));   // begin inclusive
  EXPECT_TRUE(sched.down(2, SimTime::from_seconds(14.999)));
  EXPECT_FALSE(sched.down(2, SimTime::from_seconds(15)));  // end exclusive
  EXPECT_TRUE(sched.down(2, SimTime::from_seconds(20.5)));
  EXPECT_FALSE(sched.down(2, SimTime::from_seconds(21)));
  // Other pids never down.
  EXPECT_FALSE(sched.down(1, SimTime::from_seconds(12)));
  EXPECT_FALSE(sched.down(3, SimTime::from_seconds(12)));
}

TEST(FaultScheduleTest, DriftOffsetAccumulatesOverlapOnly) {
  // +100 ppm over [10s, 20s): 1 ms gained over the full window.
  const FaultSchedule sched(parse_fault_plan("drift:3@10+10:100"));
  EXPECT_EQ(sched.drift_offset(3, SimTime::from_seconds(10)), Duration::zero());
  EXPECT_EQ(sched.drift_offset(3, SimTime::from_seconds(15)),
            Duration::micros(500));
  EXPECT_EQ(sched.drift_offset(3, SimTime::from_seconds(20)), 1_ms);
  // After the window the offset persists (the clock jumped, it does not
  // jump back).
  EXPECT_EQ(sched.drift_offset(3, SimTime::from_seconds(60)), 1_ms);
  EXPECT_EQ(sched.drift_offset(2, SimTime::from_seconds(60)), Duration::zero());
}

TEST(FaultScheduleTest, PartitionTransitionsAndEpochs) {
  const FaultSchedule sched(parse_fault_plan("cut:1-2@10+5;cut:0-3@12+1"));
  const auto& trs = sched.partition_transitions();
  ASSERT_EQ(trs.size(), 4u);
  EXPECT_EQ(trs[0].at, SimTime::from_seconds(10));
  EXPECT_TRUE(trs[0].cut);
  EXPECT_EQ(trs[1].at, SimTime::from_seconds(12));
  EXPECT_EQ(trs[1].a, 0u);
  EXPECT_EQ(trs[2].at, SimTime::from_seconds(13));
  EXPECT_FALSE(trs[2].cut);
  EXPECT_EQ(trs[3].at, SimTime::from_seconds(15));

  EXPECT_EQ(sched.partition_epoch(SimTime::from_seconds(9)), 0u);
  EXPECT_EQ(sched.partition_epoch(SimTime::from_seconds(10)), 1u);
  EXPECT_EQ(sched.partition_epoch(SimTime::from_seconds(12.5)), 2u);
  EXPECT_EQ(sched.partition_epoch(SimTime::from_seconds(100)), 4u);
}

TEST(FaultScheduleTest, BackToBackWindowsLeaveEdgeCutAtTheSeam) {
  // [10,11) then [11,12): at t=11 the heal must sort before the cut so a
  // transport replaying transitions in order ends with the edge still cut.
  const FaultSchedule sched(parse_fault_plan("cut:1-2@10+1;cut:1-2@11+1"));
  const auto& trs = sched.partition_transitions();
  ASSERT_EQ(trs.size(), 4u);
  EXPECT_EQ(trs[1].at, SimTime::from_seconds(11));
  EXPECT_FALSE(trs[1].cut);  // heal of the first window...
  EXPECT_EQ(trs[2].at, SimTime::from_seconds(11));
  EXPECT_TRUE(trs[2].cut);  // ...then the cut of the second
}

TEST(FaultScheduleTest, AppendTraceRecordsRespectsHorizon) {
  const FaultSchedule sched(
      parse_fault_plan("crash:2@10+5;cut:1-3@20+100;drift:4@1+1:50"));
  std::vector<TraceRecord> out;
  sched.append_trace_records(out, SimTime::from_seconds(60));
  // crash@10, restart@15, partition@20; heal@120 is past the horizon and the
  // drift window emits no records (it is compensated, not an outage).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, TraceKind::kCrash);
  EXPECT_EQ(out[0].pid, 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].kind, TraceKind::kRestart);
  EXPECT_EQ(out[1].at, SimTime::from_seconds(15));
  EXPECT_EQ(out[2].kind, TraceKind::kPartition);
  EXPECT_EQ(out[2].pid, 1u);
  EXPECT_EQ(out[2].peer, 3u);
}

}  // namespace
}  // namespace psn::sim
