#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::sim {
namespace {

TraceRecord at_step(std::size_t i) {
  TraceRecord r;
  r.at = SimTime::from_seconds(static_cast<double>(i));
  r.kind = TraceKind::kSend;
  r.pid = static_cast<ProcessId>(i);
  r.bytes = i;
  return r;
}

TEST(TraceRecorderTest, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRecorder(0), InvariantError);
}

TEST(TraceRecorderTest, KeepsEverythingBelowCapacity) {
  TraceRecorder tr(8);
  for (std::size_t i = 0; i < 5; ++i) tr.record(at_step(i));
  EXPECT_EQ(tr.size(), 5u);
  EXPECT_EQ(tr.recorded(), 5u);
  EXPECT_EQ(tr.evicted(), 0u);
  const auto records = tr.records();
  ASSERT_EQ(records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(records[i].pid, i);
}

TEST(TraceRecorderTest, EvictsOldestWhenFull) {
  TraceRecorder tr(3);
  for (std::size_t i = 0; i < 7; ++i) tr.record(at_step(i));
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.recorded(), 7u);
  EXPECT_EQ(tr.evicted(), 4u);
  const auto records = tr.records();  // oldest retained first
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].pid, 4u);
  EXPECT_EQ(records[1].pid, 5u);
  EXPECT_EQ(records[2].pid, 6u);
}

TEST(TraceRecorderTest, ClearResets) {
  TraceRecorder tr(2);
  tr.record(at_step(0));
  tr.record(at_step(1));
  tr.record(at_step(2));
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_EQ(tr.evicted(), 0u);
  tr.record(at_step(9));
  const auto records = tr.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].pid, 9u);
}

TEST(TraceKindTest, Names) {
  EXPECT_STREQ(to_string(TraceKind::kSense), "sense");
  EXPECT_STREQ(to_string(TraceKind::kSend), "send");
  EXPECT_STREQ(to_string(TraceKind::kReceive), "receive");
  EXPECT_STREQ(to_string(TraceKind::kDeliver), "deliver");
  EXPECT_STREQ(to_string(TraceKind::kDrop), "drop");
  EXPECT_STREQ(to_string(TraceKind::kUnreachable), "unreachable");
  EXPECT_STREQ(to_string(TraceKind::kDetect), "detect");
}

}  // namespace
}  // namespace psn::sim
