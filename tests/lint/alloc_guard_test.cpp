// Alloc-guard regression suite (`ctest -L lint`, DESIGN.md §13).
//
// The dynamic half of the PSN_HOT contract: every function annotated
// PSN_HOT claims an allocation-free steady state, the static lint check
// (tools/lint) bans the obvious allocating calls from its body, and this
// suite pins the claim end to end by running each hot path under the
// counting operator new/delete replacements (common/alloc_guard) and
// asserting ZERO allocations per event after warmup. A reintroduced
// per-event malloc — a fattened capture that spills InlineFn's buffer, a
// container that stopped recycling, a std::string born in a loop — fails
// here immediately, on the exact path that regressed.
//
// Pinned paths (one test each, plus an 8-thread repeat of all five):
//   1. Scheduler schedule→pop round trip (slab slots + monotone run reuse).
//   2. Transport broadcast fan-out: delivery executes allocation-free and
//      the schedule phase's allocation count is independent of fan-out N
//      (the SharedPayload is allocated once per logical message, never per
//      copy).
//   3. IncrementalStrobeVectorDetector::feed, including feeds that flip the
//      predicate (transitions must not build a vector to return one
//      detection).
//   4. StreamChecker::feed in trace-only mode — the soak server's always-on
//      mode — with a bounded retention window (PoolArena recycles the
//      matching working set). Bound mode is NOT pinned: replaying claimed
//      executions retains a full VectorStamp per send entry by design.
//   5. The Δ-windowed shard driver (DESIGN.md §14): window loop, outbox
//      traffic, and fence exchange recycle everything once warm.
//   6. The fault layer (DESIGN.md §15): FaultSchedule's per-message queries
//      and the stream checker's fault-record replay.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "check/stream_checker.hpp"
#include "clocks/timestamp.hpp"
#include "common/alloc_guard.hpp"
#include "common/pool_alloc.hpp"
#include "common/sim_time.hpp"
#include "core/detectors.hpp"
#include "core/observation.hpp"
#include "core/predicate.hpp"
#include "net/delay_model.hpp"
#include "net/loss_model.hpp"
#include "net/message.hpp"
#include "net/overlay.hpp"
#include "net/transport.hpp"
#include "sim/fault.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace psn {
namespace {

using alloc_guard::Scope;

TEST(AllocGuard, HooksAreInstalledAndCount) {
  ASSERT_TRUE(alloc_guard::hooks_installed())
      << "psn_alloc_guard must be linked into this binary";
  Scope scope;
  auto p = std::make_unique<std::uint64_t>(42);
  EXPECT_GE(scope.allocations(), 1u);
  EXPECT_GE(scope.bytes(), sizeof(std::uint64_t));
  p.reset();
  EXPECT_GE(scope.deallocations(), 1u);
}

TEST(AllocGuard, PoolArenaRecyclesExactSizes) {
  PoolArena arena;
  void* a = arena.allocate(64);
  arena.deallocate(a, 64);
  Scope scope;
  void* b = arena.allocate(64);  // must come off the free list
  EXPECT_EQ(scope.allocations(), 0u);
  EXPECT_EQ(a, b);
  arena.deallocate(b, 64);
}

// --- 1. slab scheduler -----------------------------------------------------

std::uint64_t scheduler_steady_allocs(std::size_t rounds) {
  sim::Scheduler sched;
  std::uint64_t fired = 0;
  const auto enqueue = [&](Duration dt) {
    sched.schedule_after(dt, sim::Scheduler::Callback([&fired] { fired++; }));
  };
  // Warmup: reach peak calendar occupancy, then drain — slab blocks, the
  // monotone run vector, and the free list all hit their steady capacity.
  for (int i = 0; i < 512; i++) enqueue(Duration::millis(i % 7));
  sched.run();
  std::uint64_t baseline = fired;

  Scope scope;
  for (std::size_t i = 0; i < rounds; i++) {
    enqueue(Duration::millis(1));
    enqueue(Duration::millis(2));
    sched.step();
    sched.step();
  }
  EXPECT_EQ(fired, baseline + 2 * rounds);
  return scope.allocations();
}

TEST(AllocGuard, SchedulerScheduleAndPopIsAllocationFree) {
  EXPECT_EQ(scheduler_steady_allocs(10'000), 0u);
}

// --- 2. broadcast fan-out --------------------------------------------------

struct BroadcastAllocs {
  std::uint64_t schedule = 0;  ///< broadcast() call itself
  std::uint64_t deliver = 0;   ///< executing every delivery event
};

BroadcastAllocs broadcast_allocs(std::size_t n, std::size_t rounds) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::from_seconds(3600.0);
  sim::Simulation sim(cfg);
  net::Transport transport(sim, net::Overlay::complete(n),
                           std::make_unique<net::FixedDelay>(
                               Duration::millis(5)),
                           std::make_unique<net::NoLoss>(),
                           sim.rng_for("transport"));
  std::uint64_t delivered = 0;
  for (ProcessId p = 0; p < n; p++) {
    transport.register_handler(p,
                               [&delivered](const net::Message&) { delivered++; });
  }
  // The logical message: one SharedPayload, allocated here, outside any
  // measured scope. Fan-out copies only bump its refcount.
  net::SenseReportPayload report;
  report.attribute = "x";
  report.strobe_vector = clocks::VectorStamp(n);
  net::Message proto;
  proto.src = 1;
  proto.kind = net::MessageKind::kStrobe;
  proto.payload = net::SharedPayload(report);

  // Warmup: one full fan-out grows the calendar to its peak.
  transport.broadcast(proto);
  sim.scheduler().run();

  BroadcastAllocs out;
  for (std::size_t r = 0; r < rounds; r++) {
    Scope schedule_scope;
    transport.broadcast(proto);
    out.schedule += schedule_scope.allocations();
    Scope deliver_scope;
    sim.scheduler().run();
    out.deliver += deliver_scope.allocations();
  }
  EXPECT_EQ(delivered, (rounds + 1) * (n - 1));
  return out;
}

TEST(AllocGuard, BroadcastDeliveryIsAllocationFree) {
  const BroadcastAllocs a = broadcast_allocs(8, 64);
  EXPECT_EQ(a.deliver, 0u);
}

TEST(AllocGuard, BroadcastScheduleCostIsIndependentOfFanOut) {
  // The shared-payload design means scheduling a broadcast to 31 receivers
  // allocates exactly as much as to 7 (in steady state: nothing — every
  // delivery closure fits InlineFn's buffer and slots are recycled).
  const BroadcastAllocs small = broadcast_allocs(8, 64);
  const BroadcastAllocs large = broadcast_allocs(32, 64);
  EXPECT_EQ(small.schedule, large.schedule);
  EXPECT_EQ(small.schedule, 0u);
}

// --- 3. dense strobe-vector detector --------------------------------------

std::uint64_t detector_feed_allocs(std::size_t rounds,
                                   std::uint64_t* transitions_out) {
  const std::size_t kProcs = 5;
  core::Predicate phi("load", core::aggregate(core::AggregateOp::kSum, "x") >
                                  100.0);
  core::IncrementalStrobeVectorDetector det(phi);

  // Pre-built update stream: reporters 1..4 alternate high/low values so the
  // sum crosses the threshold repeatedly — transitions are the interesting
  // case (they used to build a std::vector per feed). Stamps advance per
  // reporter so nothing is discarded as stale.
  std::vector<core::ReceivedUpdate> updates;
  std::uint64_t tick = 1;
  for (std::size_t r = 0; r < rounds; r++) {
    for (ProcessId p = 1; p < kProcs; p++) {
      core::ReceivedUpdate u;
      u.delivered_at = SimTime::zero() + Duration::millis(static_cast<std::int64_t>(tick));
      u.reporter = p;
      u.report.attribute = "x";
      u.report.value = (r % 2 == 0) ? 50.0 : 0.0;
      u.report.strobe_vector = clocks::VectorStamp(kProcs);
      u.report.strobe_vector[p] = tick;
      u.report.synced_timestamp = u.delivered_at;
      tick++;
      updates.push_back(std::move(u));
    }
  }
  // Warmup: the first quarter interns variables, sizes the dense tables, and
  // settles GlobalState's node map.
  const std::size_t warmup = updates.size() / 4;
  std::uint64_t transitions = 0;
  for (std::size_t i = 0; i < warmup; i++) {
    if (det.feed(updates[i], i)) transitions++;
  }
  Scope scope;
  for (std::size_t i = warmup; i < updates.size(); i++) {
    if (det.feed(updates[i], i)) transitions++;
  }
  if (transitions_out != nullptr) *transitions_out = transitions;
  return scope.allocations();
}

TEST(AllocGuard, DetectorFeedIsAllocationFreeIncludingTransitions) {
  std::uint64_t transitions = 0;
  const std::uint64_t allocs = detector_feed_allocs(512, &transitions);
  // The workload must actually exercise the transition branch, at scale.
  EXPECT_GT(transitions, 100u);
  EXPECT_EQ(allocs, 0u);
}

// --- 4. stream checker (trace-only mode) -----------------------------------

std::uint64_t stream_checker_feed_allocs(std::size_t rounds,
                                         std::size_t* violations_out) {
  check::StreamCheckerConfig cfg;
  cfg.num_processes = 8;
  cfg.send_retention = Duration::from_seconds(2.0);
  check::StreamChecker checker(cfg);

  // One logical second of traffic per round: every process strobes (sense +
  // 7 deliveries) and unicasts one computation message to the root. The
  // in-flight window is constant, so after warmup the PoolArena recycles
  // every map node and deque block and feed never touches the global
  // allocator.
  std::uint64_t seq = 1;
  sim::TraceRecord rec;  // note strings stay empty — feed never reads them
  const auto run_round = [&](std::uint64_t round) {
    const SimTime base =
        SimTime::zero() + Duration::millis(static_cast<std::int64_t>(round) * 10);
    for (ProcessId p = 1; p < cfg.num_processes; p++) {
      const std::uint64_t strobe_seq = seq++;
      rec.at = base;
      rec.kind = sim::TraceKind::kSense;
      rec.pid = p;
      rec.message_kind = static_cast<int>(net::MessageKind::kStrobe);
      rec.seq = strobe_seq;
      checker.feed(rec);
      for (ProcessId q = 0; q < cfg.num_processes; q++) {
        if (q == p) continue;
        rec.at = base + Duration::millis(1);
        rec.kind = sim::TraceKind::kDeliver;
        rec.pid = q;
        rec.seq = strobe_seq;
        checker.feed(rec);
      }
      const std::uint64_t comp_seq = seq++;
      rec.at = base + Duration::millis(2);
      rec.kind = sim::TraceKind::kSend;
      rec.pid = p;
      rec.message_kind = static_cast<int>(net::MessageKind::kComputation);
      rec.seq = comp_seq;
      checker.feed(rec);
      rec.at = base + Duration::millis(3);
      rec.kind = sim::TraceKind::kReceive;
      rec.pid = 0;
      rec.seq = comp_seq;
      checker.feed(rec);
    }
  };

  // Warmup: enough rounds that the retention window has filled AND drained —
  // peak working set reached, eviction path exercised.
  const std::uint64_t warmup_rounds = 512;
  for (std::uint64_t r = 0; r < warmup_rounds; r++) run_round(r);

  Scope scope;
  for (std::uint64_t r = 0; r < rounds; r++) run_round(warmup_rounds + r);
  if (violations_out != nullptr) *violations_out = checker.violations_so_far();
  return scope.allocations();
}

TEST(AllocGuard, StreamCheckerTraceOnlyFeedIsAllocationFree) {
  std::size_t violations = 0;
  const std::uint64_t allocs = stream_checker_feed_allocs(2048, &violations);
  EXPECT_EQ(violations, 0u) << "workload must be a clean stream";
  EXPECT_EQ(allocs, 0u);
}

// --- 5. sharded window driver ----------------------------------------------

// The Δ-windowed shard machinery (DESIGN.md §14) in steady state: per-shard
// timer chains that emit cross-shard traffic into outboxes, drained at every
// fence by the exchange hook. Once the schedulers' slabs and the outbox
// vectors reach their peak capacity, a whole measured run — schedule, fire,
// outbox push, exchange, inject — must never touch the allocator. The
// driver runs inline (pool_threads = 1: the counters are thread-local), as
// the ShardedSimulation contract documents; the transport delivery path the
// exchange replays is pinned separately by the broadcast tests above.

struct WindowChain {
  sim::Scheduler* sched = nullptr;
  std::vector<std::pair<SimTime, std::uint64_t>>* outbox = nullptr;
  std::size_t remaining = 0;
  std::uint64_t fired = 0;
  std::uint64_t received = 0;

  void arm() {
    if (remaining == 0) return;
    --remaining;
    sched->schedule_after(
        Duration::millis(1), sim::Scheduler::Callback([this] {
          ++fired;
          outbox->push_back({sched->now() + Duration::millis(5), fired});
          arm();
        }));
  }
};

std::uint64_t sharded_window_allocs(std::size_t ticks, std::uint64_t* fired_out) {
  constexpr std::size_t kShards = 4;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<sim::Simulation*> raw;
  std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> outboxes(kShards);
  std::vector<WindowChain> chains(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    sim::SimConfig cfg;
    sims.push_back(std::make_unique<sim::Simulation>(cfg));
    raw.push_back(sims.back().get());
    chains[s].sched = &sims.back()->scheduler();
    chains[s].outbox = &outboxes[s];
  }
  const auto exchange = [&]() -> std::size_t {
    std::size_t moved = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      WindowChain& dst = chains[(s + 1) % kShards];
      for (const auto& [at, payload] : outboxes[s]) {
        dst.sched->schedule_at(
            at, payload, sim::Scheduler::Callback([&dst] { ++dst.received; }));
        ++moved;
      }
      outboxes[s].clear();
    }
    return moved;
  };
  const auto drive = [&](std::size_t n) {
    for (std::size_t s = 0; s < kShards; ++s) {
      chains[s].remaining = n;
      chains[s].arm();
    }
    sim::ShardedSimulation::Config cfg;
    cfg.window = Duration::millis(5);
    cfg.horizon = chains[0].sched->now() +
                  Duration::millis(static_cast<std::int64_t>(n) + 16);
    cfg.pool_threads = 1;
    return sim::ShardedSimulation(raw, cfg);
  };

  // Warmup: one full drive reaches peak calendar + outbox capacity.
  {
    sim::ShardedSimulation warm = drive(256);
    warm.run(exchange);
  }
  sim::ShardedSimulation driver = drive(ticks);
  Scope scope;
  driver.run(exchange);
  std::uint64_t fired = 0;
  for (const WindowChain& c : chains) fired += c.fired;
  if (fired_out != nullptr) *fired_out = fired;
  return scope.allocations();
}

TEST(AllocGuard, ShardedWindowSteadyStateIsAllocationFree) {
  std::uint64_t fired = 0;
  const std::uint64_t allocs = sharded_window_allocs(2'000, &fired);
  EXPECT_EQ(fired, 4u * (256 + 2'000));  // warmup + measured, all shards
  EXPECT_EQ(allocs, 0u);
}

// --- 6. fault layer --------------------------------------------------------

// The fault schedule's steady-state queries — down(), drift_offset(),
// partition_epoch() — sit on the transport's per-message hot path when a
// plan is installed (DESIGN.md §15), and the checker's fault-record feed is
// part of the soak server's always-on loop. Both must be allocation-free
// once warm: the schedule is immutable pure data, and the checker's
// down/cut replay state is sized at construction (cut_edges_ reserved).

std::uint64_t fault_schedule_query_allocs(std::size_t queries) {
  const sim::FaultSchedule sched(sim::parse_fault_plan(
      "crash:1@1+2;crash:2@5+1;cut:1-2@2+2;cut:1-3@6+3;drift:1@0+4:100"));
  // Warmup (nothing to warm — the schedule never mutates — but keep the
  // shape uniform with the other pinned paths).
  std::uint64_t sink = 0;
  const auto probe = [&](std::size_t i) {
    const SimTime t = SimTime::zero() +
                      Duration::millis(static_cast<std::int64_t>(i % 9000));
    const ProcessId pid = static_cast<ProcessId>(1 + i % 3);
    sink += sched.down(pid, t) ? 1u : 0u;
    sink += static_cast<std::uint64_t>(
        sched.drift_offset(pid, t).count_nanos());
    sink += sched.partition_epoch(t);
  };
  for (std::size_t i = 0; i < 64; ++i) probe(i);
  Scope scope;
  for (std::size_t i = 0; i < queries; ++i) probe(i);
  // Defeat optimizing the loop away.
  EXPECT_GT(sink, 0u);
  return scope.allocations();
}

std::uint64_t checker_fault_feed_allocs(std::uint64_t rounds) {
  check::StreamCheckerConfig cfg;
  cfg.num_processes = 4;
  cfg.send_retention = Duration::seconds(1);
  check::StreamChecker checker(cfg);
  sim::TraceRecord rec;
  rec.seq = 0;
  const auto run_round = [&](std::uint64_t round) {
    const SimTime base =
        SimTime::zero() +
        Duration::millis(static_cast<std::int64_t>(round) * 10);
    const auto fault = [&](Duration off, sim::TraceKind kind, ProcessId pid,
                           ProcessId peer) {
      rec.at = base + off;
      rec.kind = kind;
      rec.pid = pid;
      rec.peer = peer;
      checker.feed(rec);
    };
    fault(Duration::zero(), sim::TraceKind::kCrash, 2, kNoProcess);
    fault(Duration::millis(1), sim::TraceKind::kPartition, 1, 3);
    fault(Duration::millis(4), sim::TraceKind::kRestart, 2, kNoProcess);
    fault(Duration::millis(5), sim::TraceKind::kHeal, 1, 3);
  };
  const std::uint64_t warmup_rounds = 256;
  for (std::uint64_t r = 0; r < warmup_rounds; r++) run_round(r);
  Scope scope;
  for (std::uint64_t r = 0; r < rounds; r++) run_round(warmup_rounds + r);
  EXPECT_EQ(checker.violations_so_far(), 0u) << "workload must be clean";
  return scope.allocations();
}

TEST(AllocGuard, FaultScheduleQueriesAreAllocationFree) {
  EXPECT_EQ(fault_schedule_query_allocs(10'000), 0u);
}

TEST(AllocGuard, StreamCheckerFaultFeedIsAllocationFree) {
  EXPECT_EQ(checker_fault_feed_allocs(2'000), 0u);
}

// --- 8-thread repeat -------------------------------------------------------

// Counters are thread-local, so each thread independently asserts zero for
// its own workload; the pinned paths run concurrently to shake out any
// hidden shared-state allocation (there must be none — these paths are all
// per-run/per-session state by design).
TEST(AllocGuard, AllPinnedPathsStayAllocationFreeOn8Threads) {
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> allocs(kThreads, ~0ull);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([t, &allocs] {
      std::uint64_t total = 0;
      switch (t % 7) {
        case 0:
          total = scheduler_steady_allocs(2'000);
          break;
        case 1:
          total = broadcast_allocs(8, 16).deliver;
          break;
        case 2:
          total = detector_feed_allocs(128, nullptr);
          break;
        case 3:
          total = stream_checker_feed_allocs(256, nullptr);
          break;
        case 4:
          total = sharded_window_allocs(512, nullptr);
          break;
        case 5:
          total = fault_schedule_query_allocs(2'000);
          break;
        case 6:
          total = checker_fault_feed_allocs(512);
          break;
      }
      allocs[static_cast<std::size_t>(t)] = total;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; t++) {
    EXPECT_EQ(allocs[static_cast<std::size_t>(t)], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace psn
