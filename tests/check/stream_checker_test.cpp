// StreamChecker tests: batch/stream equivalence (the redesign's core
// guarantee), bounded retained state under a long synthetic stream, the
// validity-horizon contract, and trace-only structural checking — the soak
// server's mode.

#include "check/stream_checker.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "core/system.hpp"
#include "net/message.hpp"
#include "world/generators.hpp"

namespace psn::check {
namespace {

using namespace psn::time_literals;

/// Same shape as check_test's clean run — strobes, computation edges,
/// internal events — but parameterized on the wire clock mode.
RunInputs traced_run(net::ClockMode mode, std::uint64_t seed = 7) {
  core::SystemConfig cfg;
  cfg.num_sensors = 3;
  cfg.sim.seed = seed;
  cfg.sim.horizon = SimTime::zero() + 10_s;
  cfg.sim.trace_capacity = std::size_t{1} << 14;
  cfg.delta = 20_ms;
  cfg.clock_mode = mode;
  core::PervasiveSystem system(cfg);

  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  for (ProcessId pid = 1; pid < system.num_processes(); ++pid) {
    const auto obj =
        system.world().create_object("obj_" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    drivers.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PeriodicArrivals>(800_ms, 50_ms),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("driver", pid)));
    drivers.back()->start();
  }
  for (int k = 0; k < 6; ++k) {
    const auto src = static_cast<ProcessId>(1 + k % 3);
    const auto dst = static_cast<ProcessId>(1 + (k + 1) % 3);
    system.sim().scheduler().schedule_at(
        SimTime::zero() + Duration::millis(1500 + 700 * k),
        [&system, src, dst] { system.sensor(src).send_computation(dst, "t"); });
    system.sim().scheduler().schedule_at(
        SimTime::zero() + Duration::millis(1700 + 700 * k),
        [&system, src] { system.sensor(src).compute(); });
  }
  system.run();
  return inputs_from(system);
}

/// Record-by-record streaming replay with the exact configuration check_run
/// uses internally (unbounded retention).
CheckReport stream_report(const RunInputs& in, const CheckOptions& opt = {}) {
  StreamCheckerConfig cfg;
  cfg.num_processes = in.num_processes;
  cfg.sync_epsilon = in.sync_epsilon;
  cfg.drifting = in.drifting;
  cfg.options = opt;
  cfg.executions = &in.executions;
  cfg.trace_evicted = in.trace_evicted;
  StreamChecker checker(cfg);
  for (const sim::TraceRecord& r : in.trace) checker.feed(r);
  return checker.finish();
}

sim::TraceRecord sense_record(SimTime at, ProcessId pid, std::uint64_t seq) {
  sim::TraceRecord r;
  r.at = at;
  r.kind = sim::TraceKind::kSense;
  r.pid = pid;
  r.seq = seq;
  return r;
}

sim::TraceRecord deliver_record(SimTime at, ProcessId pid,
                                std::uint64_t seq) {
  sim::TraceRecord r;
  r.at = at;
  r.kind = sim::TraceKind::kDeliver;
  r.pid = pid;
  r.message_kind = static_cast<int>(net::MessageKind::kStrobe);
  r.seq = seq;
  return r;
}

class StreamEquivalenceTest : public ::testing::TestWithParam<net::ClockMode> {
};

TEST_P(StreamEquivalenceTest, BatchAndStreamReportsAreByteIdentical) {
  const RunInputs inputs = traced_run(GetParam());
  ASSERT_FALSE(inputs.trace.empty());
  const CheckReport batch = check_run(inputs);
  const CheckReport stream = stream_report(inputs);
  EXPECT_TRUE(batch.clean()) << batch.summary();
  EXPECT_EQ(batch.summary(), stream.summary());
  EXPECT_EQ(batch.verdict, stream.verdict);
  EXPECT_EQ(batch.total_violations(), stream.total_violations());
}

TEST_P(StreamEquivalenceTest, EquivalentOnCorruptedRunsToo) {
  RunInputs inputs = traced_run(GetParam());
  // Corrupt one vector stamp and one Lamport value so several contracts
  // fire; equivalence must hold for violating reports as well.
  bool corrupted = false;
  for (auto& execution : inputs.executions) {
    for (auto& e : execution) {
      if (e.type == core::EventType::kSense) {
        e.clocks.lamport.value = 0;
        if (!e.clocks.causal_vector.size()) continue;
        e.clocks.causal_vector[0] += 5;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted);
  const CheckReport batch = check_run(inputs);
  const CheckReport stream = stream_report(inputs);
  EXPECT_FALSE(batch.clean());
  EXPECT_EQ(batch.summary(), stream.summary());
}

INSTANTIATE_TEST_SUITE_P(AllClockModes, StreamEquivalenceTest,
                         ::testing::Values(net::ClockMode::kScalarStrobe,
                                           net::ClockMode::kVectorStrobe,
                                           net::ClockMode::kPhysical),
                         [](const auto& mode_info) {
                           return std::string(net::to_string(mode_info.param));
                         });

TEST(StreamCheckerTest, FeedSurfacesViolationsAsTheyAreWitnessed) {
  const RunInputs inputs = traced_run(net::ClockMode::kVectorStrobe);
  StreamCheckerConfig cfg;
  cfg.num_processes = inputs.num_processes;
  cfg.sync_epsilon = inputs.sync_epsilon;
  cfg.drifting = inputs.drifting;
  cfg.executions = &inputs.executions;
  StreamChecker checker(cfg);
  bool saw_violation = false;
  for (sim::TraceRecord r : inputs.trace) {
    if (r.kind == sim::TraceKind::kDeliver &&
        r.message_kind == static_cast<int>(net::MessageKind::kStrobe)) {
      r.seq = 999999;  // delivery from a sense the checker never saw
    }
    const auto v = checker.feed(r);
    if (v.has_value()) {
      saw_violation = true;
      EXPECT_EQ(v->kind, ViolationKind::kUnmatchedDeliver);
      break;
    }
  }
  EXPECT_TRUE(saw_violation);
}

TEST(StreamCheckerTest, BoundedRetentionUnderMillionRecordStream) {
  // Trace-only soak: 10^6 records of sense->deliver strobe traffic. With a
  // 1 s retention window and 1 ms spacing the retained working set must
  // stay around one window's worth of entries — independent of how long
  // the stream runs.
  StreamCheckerConfig cfg;
  cfg.send_retention = Duration::seconds(1);
  StreamChecker checker(cfg);
  constexpr std::size_t kPairs = 500000;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < kPairs; ++i) {
    const SimTime at =
        SimTime::zero() + Duration::millis(static_cast<std::int64_t>(i));
    const std::uint64_t seq = i + 1;
    EXPECT_FALSE(checker.feed(sense_record(at, 1, seq)).has_value());
    EXPECT_FALSE(checker.feed(deliver_record(at, 0, seq)).has_value());
    peak = std::max(peak, checker.pending_sends());
  }
  EXPECT_EQ(checker.records_fed(), 2 * kPairs);
  // One window is 1000 entries at this rate; allow slack, but it must be
  // nowhere near the million-record stream length.
  EXPECT_LE(peak, 1100u);
  const CheckReport report = checker.finish();
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(StreamCheckerTest, ExpiredValidityHorizonIsFlagged) {
  StreamCheckerConfig cfg;
  cfg.options.validity_horizon.lifetime = Duration::millis(10);
  StreamChecker checker(cfg);
  ASSERT_FALSE(
      checker.feed(sense_record(SimTime::zero(), 1, 1)).has_value());
  // Delivered within the horizon: fine.
  ASSERT_FALSE(checker
                   .feed(deliver_record(SimTime::zero() + 5_ms, 0, 1))
                   .has_value());
  ASSERT_FALSE(
      checker.feed(sense_record(SimTime::zero() + 20_ms, 1, 2)).has_value());
  // Delivered 30 ms after the sense with a 10 ms lifetime: stale.
  const auto v = checker.feed(deliver_record(SimTime::zero() + 50_ms, 0, 2));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, ViolationKind::kStaleObservation);
  EXPECT_EQ(checker.stale_observations(), 1u);

  const CheckReport report = checker.finish();
  ASSERT_NE(report.contract("validity-horizon"), nullptr);
  EXPECT_EQ(report.contract("validity-horizon")->violations_total, 1u);
  EXPECT_EQ(report.verdict, Verdict::kViolations);
}

TEST(StreamCheckerTest, ValidityContractOnlyJoinsReportWhenBounded) {
  const RunInputs inputs = traced_run(net::ClockMode::kVectorStrobe);
  const CheckReport unbounded = check_run(inputs);
  EXPECT_EQ(unbounded.contract("validity-horizon"), nullptr);

  CheckOptions options;
  options.validity_horizon.lifetime = Duration::seconds(30);
  const CheckReport bounded = check_run(inputs, options);
  ASSERT_NE(bounded.contract("validity-horizon"), nullptr);
  EXPECT_GT(bounded.contract("validity-horizon")->events_checked, 0u);
  EXPECT_EQ(bounded.contract("validity-horizon")->violations_total, 0u);
  EXPECT_TRUE(bounded.clean()) << bounded.summary();
}

TEST(StreamCheckerTest, TraceOnlyModeCatchesUnknownDeliver) {
  StreamCheckerConfig cfg;  // no executions, unknown topology
  StreamChecker checker(cfg);
  const auto v = checker.feed(deliver_record(SimTime::zero() + 1_ms, 2, 42));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, ViolationKind::kUnmatchedDeliver);
  const CheckReport report = checker.finish();
  EXPECT_EQ(report.verdict, Verdict::kViolations);
}

sim::TraceRecord fault_record(SimTime at, sim::TraceKind kind, ProcessId pid,
                              ProcessId peer = kNoProcess) {
  sim::TraceRecord r;
  r.at = at;
  r.kind = kind;
  r.pid = pid;
  r.peer = peer;
  r.seq = 0;
  return r;
}

TEST(StreamCheckerFaultTest, FaultContractOnlyJoinsReportWhenFaultsSeen) {
  StreamCheckerConfig cfg;
  {
    StreamChecker checker(cfg);
    checker.feed(sense_record(SimTime::zero(), 1, 1));
    const CheckReport report = checker.finish();
    EXPECT_EQ(report.contract("fault-model"), nullptr);
  }
  {
    StreamChecker checker(cfg);
    checker.feed(
        fault_record(SimTime::zero(), sim::TraceKind::kCrash, 2));
    checker.feed(
        fault_record(SimTime::zero() + 1_s, sim::TraceKind::kRestart, 2));
    const CheckReport report = checker.finish();
    ASSERT_NE(report.contract("fault-model"), nullptr);
    EXPECT_EQ(report.contract("fault-model")->violations_total, 0u);
    EXPECT_TRUE(report.clean()) << report.summary();
  }
}

TEST(StreamCheckerFaultTest, MalformedPairingsAreFlagged) {
  StreamCheckerConfig cfg;
  {  // crash while already down
    StreamChecker checker(cfg);
    checker.feed(fault_record(SimTime::zero(), sim::TraceKind::kCrash, 2));
    const auto v = checker.feed(
        fault_record(SimTime::zero() + 1_ms, sim::TraceKind::kCrash, 2));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind, ViolationKind::kFaultPairing);
  }
  {  // restart without a crash
    StreamChecker checker(cfg);
    const auto v =
        checker.feed(fault_record(SimTime::zero(), sim::TraceKind::kRestart, 2));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind, ViolationKind::kFaultPairing);
  }
  {  // double cut of one edge (either orientation)
    StreamChecker checker(cfg);
    checker.feed(
        fault_record(SimTime::zero(), sim::TraceKind::kPartition, 1, 3));
    const auto v = checker.feed(
        fault_record(SimTime::zero() + 1_ms, sim::TraceKind::kPartition, 3, 1));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind, ViolationKind::kFaultPairing);
  }
  {  // heal of an edge that was never cut
    StreamChecker checker(cfg);
    const auto v =
        checker.feed(fault_record(SimTime::zero(), sim::TraceKind::kHeal, 1, 2));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind, ViolationKind::kFaultPairing);
  }
}

TEST(StreamCheckerFaultTest, ActivityInsideACrashWindowIsFlagged) {
  StreamCheckerConfig cfg;
  StreamChecker checker(cfg);
  checker.feed(fault_record(SimTime::zero(), sim::TraceKind::kCrash, 1));
  // A sense from the downed process: impossible, it is not running.
  const auto v1 = checker.feed(sense_record(SimTime::zero() + 1_ms, 1, 1));
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->kind, ViolationKind::kActivityWhileDown);
  // A delivery *to* a downed process: the transport must have dropped it.
  checker.feed(sense_record(SimTime::zero() + 2_ms, 2, 7));
  const auto v2 = checker.feed(deliver_record(SimTime::zero() + 3_ms, 1, 7));
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->kind, ViolationKind::kActivityWhileDown);
  // After the restart the same activity is fine again.
  checker.feed(fault_record(SimTime::zero() + 4_ms, sim::TraceKind::kRestart, 1));
  EXPECT_FALSE(checker.feed(sense_record(SimTime::zero() + 5_ms, 1, 2))
                   .has_value());
  const CheckReport report = checker.finish();
  ASSERT_NE(report.contract("fault-model"), nullptr);
  EXPECT_EQ(report.contract("fault-model")->violations_total, 2u);
}

TEST(StreamCheckerTest, EvictedRingRefusalIsATraceWindowError) {
  RunInputs inputs = traced_run(net::ClockMode::kVectorStrobe);
  inputs.trace_evicted = 17;
  // The dedicated subtype lets psn_cli exit distinctly; it still is a
  // ConfigError so existing catch sites keep working.
  EXPECT_THROW(check_run(inputs), TraceWindowError);
  EXPECT_THROW(check_run(inputs), ConfigError);
}

}  // namespace
}  // namespace psn::check
