// Mutation tests of the causality & clock-contract checker: corrupt a known-
// good run's event/clock streams in targeted ways and assert the checker
// pins each corruption on the right contract. A checker that cannot catch a
// planted bug cannot be trusted to catch a real one.

#include "check/check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/system.hpp"
#include "world/generators.hpp"

namespace psn::check {
namespace {

using namespace psn::time_literals;

/// A small three-sensor run with strobe traffic (periodic counters),
/// computation messages (full s/r edge coverage), and internal events, with
/// the trace ring sized to hold everything.
RunInputs clean_inputs(std::uint64_t seed = 7) {
  core::SystemConfig cfg;
  cfg.num_sensors = 3;
  cfg.sim.seed = seed;
  cfg.sim.horizon = SimTime::zero() + 10_s;
  cfg.sim.trace_capacity = std::size_t{1} << 14;
  cfg.delta = 20_ms;
  core::PervasiveSystem system(cfg);

  std::vector<std::unique_ptr<world::AttributeDriver>> drivers;
  for (ProcessId pid = 1; pid < system.num_processes(); ++pid) {
    const auto obj = system.world().create_object("obj_" + std::to_string(pid));
    system.world().object(obj).set_attribute("count", std::int64_t{0});
    system.assign(obj, "count", pid);
    drivers.push_back(std::make_unique<world::AttributeDriver>(
        system.world(), obj, "count",
        std::make_unique<world::PeriodicArrivals>(800_ms, 50_ms),
        std::make_unique<world::CounterValue>(),
        system.sim().rng_for("driver", pid)));
    drivers.back()->start();
  }
  for (int k = 0; k < 6; ++k) {
    const auto src = static_cast<ProcessId>(1 + k % 3);
    const auto dst = static_cast<ProcessId>(1 + (k + 1) % 3);
    system.sim().scheduler().schedule_at(
        SimTime::zero() + Duration::millis(1500 + 700 * k),
        [&system, src, dst] { system.sensor(src).send_computation(dst, "t"); });
    system.sim().scheduler().schedule_at(
        SimTime::zero() + Duration::millis(1700 + 700 * k),
        [&system, src] { system.sensor(src).compute(); });
  }
  system.run();
  return inputs_from(system);
}

/// True iff any contract recorded a violation of `kind`.
bool has_kind(const CheckReport& report, ViolationKind kind) {
  for (const ContractResult& c : report.contracts) {
    for (const CheckViolation& v : c.violations) {
      if (v.kind == kind) return true;
    }
  }
  return false;
}

/// First event of `type` (in any sensor execution) satisfying `pred`;
/// aborts the test if none exists.
core::ProcessEvent* find_event(
    RunInputs& in, core::EventType type,
    const std::function<bool(const core::ProcessEvent&)>& pred =
        [](const core::ProcessEvent&) { return true; }) {
  for (auto& execution : in.executions) {
    for (auto& e : execution) {
      if (e.type == type && pred(e)) return &e;
    }
  }
  return nullptr;
}

TEST(CheckMutationTest, CleanRunPassesEveryContract) {
  const RunInputs inputs = clean_inputs();
  const CheckReport report = check_run(inputs);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.verdict, Verdict::kClean);
  EXPECT_EQ(report.total_violations(), 0u);
  for (const ContractResult& c : report.contracts) {
    EXPECT_TRUE(c.checked) << c.contract;
  }
  ASSERT_NE(report.contract("lamport"), nullptr);
  EXPECT_GT(report.contract("lamport")->events_checked, 30u);
  ASSERT_NE(report.contract("strobe-soundness"), nullptr);
  EXPECT_GT(report.contract("strobe-soundness")->pairs_checked, 0u);
}

TEST(CheckMutationTest, SeveredSendReceiveEdgeIsAnUnmatchedReceive) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* r = find_event(inputs, core::EventType::kReceive);
  ASSERT_NE(r, nullptr) << "run produced no receive events";
  r->message_seq = 0;  // sever the send->receive edge

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kUnmatchedReceive))
      << report.summary();
}

TEST(CheckMutationTest, NonMonotoneLamportTickIsALamportOrderViolation) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* second = nullptr;
  for (auto& execution : inputs.executions) {
    if (execution.size() >= 2) {
      second = &execution[1];
      break;
    }
  }
  ASSERT_NE(second, nullptr);
  second->clocks.lamport.value = 0;  // SC1 requires a strictly larger value

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kLamportOrder))
      << report.summary();
}

TEST(CheckMutationTest, SwappedCausalVectorComponentsAreAVectorMismatch) {
  RunInputs inputs = clean_inputs();
  // A receive event always has its own and the sender's components > 0 and
  // distinct from each other's positions, so a swap is a real corruption.
  core::ProcessEvent* r =
      find_event(inputs, core::EventType::kReceive,
                 [](const core::ProcessEvent& e) {
                   for (std::size_t i = 0; i < e.clocks.causal_vector.size();
                        ++i) {
                     if (e.clocks.causal_vector[i] !=
                         e.clocks.causal_vector[0]) {
                       return true;
                     }
                   }
                   return false;
                 });
  ASSERT_NE(r, nullptr) << "no receive event with distinct components";
  auto& vc = r->clocks.causal_vector;
  std::size_t other = 0;
  for (std::size_t i = 1; i < vc.size(); ++i) {
    if (vc[i] != vc[0]) other = i;
  }
  const std::uint64_t tmp = vc[0];
  vc[0] = vc[other];
  vc[other] = tmp;

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kVectorMismatch))
      << report.summary();
}

TEST(CheckMutationTest, SwappedStrobeVectorComponentsAreAStrobeMismatch) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* n =
      find_event(inputs, core::EventType::kSense,
                 [](const core::ProcessEvent& e) {
                   for (std::size_t i = 0; i < e.clocks.strobe_vector.size();
                        ++i) {
                     if (e.clocks.strobe_vector[i] !=
                         e.clocks.strobe_vector[0]) {
                       return true;
                     }
                   }
                   return false;
                 });
  ASSERT_NE(n, nullptr) << "no sense event with distinct strobe components";
  auto& sv = n->clocks.strobe_vector;
  std::size_t other = 0;
  for (std::size_t i = 1; i < sv.size(); ++i) {
    if (sv[i] != sv[0]) other = i;
  }
  const std::uint64_t tmp = sv[0];
  sv[0] = sv[other];
  sv[other] = tmp;

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kStrobeVectorMismatch))
      << report.summary();
}

TEST(CheckMutationTest, RewoundStrobeScalarIsAStrobeScalarMismatch) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* n = find_event(
      inputs, core::EventType::kSense,
      [](const core::ProcessEvent& e) { return e.clocks.strobe_scalar.value > 1; });
  ASSERT_NE(n, nullptr);
  n->clocks.strobe_scalar.value -= 1;  // SSC1 ticked, the claim did not

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kStrobeScalarMismatch))
      << report.summary();
}

TEST(CheckMutationTest, EpsilonViolatingTimestampIsAnEpsilonBoundViolation) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* e = find_event(inputs, core::EventType::kSense);
  ASSERT_NE(e, nullptr);
  // Push the synchronized reading a full second off true time — far outside
  // any sane ε.
  e->clocks.physical_synced = e->clocks.true_time + Duration::seconds(1);

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kEpsilonBound))
      << report.summary();
}

TEST(CheckMutationTest, DriftEnvelopeViolationIsADriftBoundViolation) {
  RunInputs inputs = clean_inputs();
  core::ProcessEvent* e = find_event(inputs, core::EventType::kSense);
  ASSERT_NE(e, nullptr);
  e->clocks.physical_local = e->clocks.true_time + Duration::seconds(3600);

  const CheckReport report = check_run(inputs);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, ViolationKind::kDriftBound)) << report.summary();
}

TEST(CheckMutationTest, EvictedTraceIsRefusedUnlessPartialWindowAllowed) {
  RunInputs inputs = clean_inputs();
  inputs.trace_evicted = 1;
  EXPECT_THROW(check_run(inputs), ConfigError);

  CheckOptions options;
  options.allow_partial_window = true;
  const CheckReport report = check_run(inputs, options);
  EXPECT_EQ(report.verdict, Verdict::kPartialWindow);
  EXPECT_FALSE(report.clean());
  // Window-dependent contracts are skipped, not silently passed.
  ASSERT_NE(report.contract("vector"), nullptr);
  EXPECT_FALSE(report.contract("vector")->checked);
  // Window-independent ones still run.
  ASSERT_NE(report.contract("physical-epsilon"), nullptr);
  EXPECT_TRUE(report.contract("physical-epsilon")->checked);
  EXPECT_GT(report.contract("lamport")->events_checked, 0u);
}

TEST(CheckMutationTest, ViolationRecordingIsCappedButCountingIsNot) {
  RunInputs inputs = clean_inputs();
  std::size_t corrupted = 0;
  for (auto& execution : inputs.executions) {
    for (auto& e : execution) {
      e.clocks.physical_synced = e.clocks.true_time + Duration::seconds(1);
      corrupted++;
    }
  }
  ASSERT_GT(corrupted, 4u);

  CheckOptions options;
  options.max_recorded_violations = 4;
  const CheckReport report = check_run(inputs, options);
  const ContractResult* eps = report.contract("physical-epsilon");
  ASSERT_NE(eps, nullptr);
  EXPECT_EQ(eps->violations.size(), 4u);
  EXPECT_EQ(eps->violations_total, corrupted);
}

}  // namespace
}  // namespace psn::check
