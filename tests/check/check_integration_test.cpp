// End-to-end checker integration: the stock occupancy experiment — the base
// configuration every E1–E9 bench sweeps around — must replay clean through
// every clock contract and the Δ-race audit, under all three wire clock
// modes. This is the regression net the checker exists for: an optimization
// that breaks causality tracking turns these red.

#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "check/check.hpp"
#include "check/race_scan.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

class CheckedOccupancyTest : public ::testing::TestWithParam<net::ClockMode> {};

TEST_P(CheckedOccupancyTest, StockConfigReplaysCleanWithRaceAudit) {
  OccupancyConfig cfg;  // the E1–E9 base point, stock defaults
  cfg.clock_mode = GetParam();
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  const check::CheckReport& report = *run.check;
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.trace_evicted, 0u);
  EXPECT_EQ(run.trace_evicted, 0u);

  // Every clock contract actually ran over a nontrivial run.
  for (const char* contract :
       {"lamport", "vector", "strobe-scalar", "strobe-vector",
        "strobe-soundness", "physical-epsilon", "physical-drift"}) {
    const check::ContractResult* c = report.contract(contract);
    ASSERT_NE(c, nullptr) << contract;
    EXPECT_TRUE(c->checked) << contract;
    EXPECT_GT(c->events_checked + c->pairs_checked, 0u) << contract;
  }

  // The stock config is lossless, Δ-bounded, and always-on, so the strict
  // race audit ran for every detector and explained every confident error.
  for (const DetectorOutcome& out : run.outcomes) {
    const check::ContractResult* audit =
        report.contract("race-audit." + out.detector);
    ASSERT_NE(audit, nullptr) << out.detector;
    EXPECT_EQ(audit->violations_total, 0u) << out.detector;
    EXPECT_EQ(audit->events_checked, out.score.fp_cause_times.size() +
                                         out.score.fn_occurrence_times.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllClockModes, CheckedOccupancyTest,
                         ::testing::Values(net::ClockMode::kScalarStrobe,
                                           net::ClockMode::kVectorStrobe,
                                           net::ClockMode::kPhysical),
                         [](const auto& p) {
                           return std::string(net::to_string(p.param));
                         });

TEST(CheckedOccupancyTest, LossyConfigStillChecksContractsButSkipsAudit) {
  OccupancyConfig cfg;
  cfg.loss_probability = 0.3;  // E3-style burst-free random loss
  cfg.horizon = Duration::seconds(30);
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  // Loss drops messages, not clock correctness: contracts stay clean.
  EXPECT_TRUE(run.check->clean()) << run.check->summary();
  // But races are no longer the only error source, so no strict audit.
  EXPECT_EQ(run.check->contract("race-audit.delivery-order"), nullptr);
}

TEST(CheckedOccupancyTest, CheckAutoEnablesTracing) {
  OccupancyConfig cfg;
  cfg.horizon = Duration::seconds(10);
  cfg.check = true;
  ASSERT_EQ(cfg.trace_capacity, 0u);

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  EXPECT_GT(run.trace.size(), 0u);
  EXPECT_EQ(run.trace_evicted, 0u);
}

TEST(RaceScanTest, FindsPlantedDeltaRaceAndInversion) {
  core::ObservationLog log;
  log.num_processes = 3;
  auto update = [](ProcessId pid, SimTime sensed, SimTime delivered) {
    core::ReceivedUpdate u;
    u.reporter = pid;
    u.report.true_sense_time = sensed;
    u.delivered_at = delivered;
    return u;
  };
  const SimTime t0 = SimTime::zero();
  // P2's sense at t=1.001s is delivered *before* P1's at t=1.000s: a 1 ms
  // race, inverted. P1's second sense at t=5s races with nothing.
  log.updates.push_back(update(2, t0 + 1_s + 1_ms, t0 + 1_s + 20_ms));
  log.updates.push_back(update(1, t0 + 1_s, t0 + 1_s + 30_ms));
  log.updates.push_back(update(1, t0 + 5_s, t0 + 5_s + 10_ms));

  check::RaceScanConfig scan;
  scan.window = 100_ms;
  const auto races = check::scan_races(log, scan);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].pid_a, 1);
  EXPECT_EQ(races[0].pid_b, 2);
  EXPECT_EQ(races[0].gap, 1_ms);
  EXPECT_TRUE(races[0].delivery_inverted);

  // An error inside the race span is explained; one far away is not.
  const auto ok = check::audit_detector(
      "probe", races, {t0 + 1_s}, {}, check::AuditConfig{});
  EXPECT_EQ(ok.violations_total, 0u);
  const auto bad = check::audit_detector(
      "probe", races, {t0 + 5_s}, {t0 + 8_s}, check::AuditConfig{});
  EXPECT_EQ(bad.violations_total, 2u);
  ASSERT_EQ(bad.violations.size(), 2u);
  EXPECT_EQ(bad.violations[0].kind,
            check::ViolationKind::kUnexplainedFalsePositive);
  EXPECT_EQ(bad.violations[1].kind,
            check::ViolationKind::kUnexplainedFalseNegative);
}

}  // namespace
}  // namespace psn::analysis
