// End-to-end checker integration: the stock occupancy experiment — the base
// configuration every E1–E9 bench sweeps around — must replay clean through
// every clock contract and the Δ-race audit, under all three wire clock
// modes. This is the regression net the checker exists for: an optimization
// that breaks causality tracking turns these red.

#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "check/check.hpp"
#include "check/race_scan.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

class CheckedOccupancyTest : public ::testing::TestWithParam<net::ClockMode> {};

TEST_P(CheckedOccupancyTest, StockConfigReplaysCleanWithRaceAudit) {
  OccupancyConfig cfg;  // the E1–E9 base point, stock defaults
  cfg.clock_mode = GetParam();
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  const check::CheckReport& report = *run.check;
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.trace_evicted, 0u);
  EXPECT_EQ(run.trace_evicted, 0u);

  // Every clock contract actually ran over a nontrivial run.
  for (const char* contract :
       {"lamport", "vector", "strobe-scalar", "strobe-vector",
        "strobe-soundness", "physical-epsilon", "physical-drift"}) {
    const check::ContractResult* c = report.contract(contract);
    ASSERT_NE(c, nullptr) << contract;
    EXPECT_TRUE(c->checked) << contract;
    EXPECT_GT(c->events_checked + c->pairs_checked, 0u) << contract;
  }

  // The stock config is lossless, Δ-bounded, and always-on, so the strict
  // race audit ran for every detector and explained every confident error.
  for (const DetectorOutcome& out : run.outcomes) {
    const check::ContractResult* audit =
        report.contract("race-audit." + out.detector);
    ASSERT_NE(audit, nullptr) << out.detector;
    EXPECT_EQ(audit->violations_total, 0u) << out.detector;
    EXPECT_EQ(audit->events_checked, out.score.fp_cause_times.size() +
                                         out.score.fn_occurrence_times.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllClockModes, CheckedOccupancyTest,
                         ::testing::Values(net::ClockMode::kScalarStrobe,
                                           net::ClockMode::kVectorStrobe,
                                           net::ClockMode::kPhysical),
                         [](const auto& p) {
                           return std::string(net::to_string(p.param));
                         });

TEST(CheckedOccupancyTest, LossyConfigAuditsAtFullStrictnessViaDropSpans) {
  OccupancyConfig cfg;
  cfg.loss_probability = 0.3;  // E3-style burst-free random loss
  cfg.horizon = Duration::seconds(30);
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  // Loss drops messages, not clock correctness: contracts stay clean.
  EXPECT_TRUE(run.check->clean()) << run.check->summary();
  // Dropped reports become attributable fault spans (DESIGN.md §15), so the
  // strict audit runs even under loss and explains every confident error.
  for (const DetectorOutcome& out : run.outcomes) {
    const check::ContractResult* audit =
        run.check->contract("race-audit." + out.detector);
    ASSERT_NE(audit, nullptr) << out.detector;
    EXPECT_EQ(audit->violations_total, 0u) << out.detector;
  }
}

TEST(CheckedOccupancyTest, FaultyRunAuditsCleanWithEveryErrorAttributed) {
  // The ISSUE acceptance run: crash + partition + Gilbert–Elliott burst
  // loss, checked at full strictness. Every confident FP/FN must be
  // attributable to a race or a recorded fault — no eligibility downgrade.
  OccupancyConfig cfg;
  cfg.doors = 3;
  cfg.horizon = Duration::seconds(30);
  cfg.faults = sim::parse_fault_plan("crash:2@5+4;cut:1-3@12+5");
  core::SystemConfig::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.3;
  ge.loss_in_good = 0.01;
  ge.loss_in_bad = 0.6;
  cfg.gilbert_elliott = ge;
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  const check::CheckReport& report = *run.check;
  EXPECT_TRUE(report.clean()) << report.summary();

  // The fault-model contract joined the report (crash/partition records were
  // present and well-paired, and no activity leaked into a crash window).
  const check::ContractResult* fault = report.contract("fault-model");
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault->violations_total, 0u);
  EXPECT_GE(fault->events_checked, 4u);  // crash, restart, partition, heal

  // The strict audit ran for every detector despite loss + faults.
  for (const DetectorOutcome& out : run.outcomes) {
    const check::ContractResult* audit =
        report.contract("race-audit." + out.detector);
    ASSERT_NE(audit, nullptr) << out.detector;
    EXPECT_EQ(audit->violations_total, 0u) << out.detector;
  }

  // The spans the audit used cover the injected windows.
  check::FaultSpanConfig span_cfg;
  span_cfg.delta_bound = run.delta_bound;
  const auto spans = check::collect_fault_spans(
      run.trace, core::ObservationLog{}, span_cfg);
  bool saw_crash = false;
  bool saw_partition = false;
  for (const check::FaultSpan& s : spans) {
    saw_crash |= s.cause == check::FaultSpan::Cause::kCrash && s.reporter == 2;
    saw_partition |= s.cause == check::FaultSpan::Cause::kPartition;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_partition);
}

TEST(CheckedOccupancyTest, DeclaredClockFaultIsCompensatedNotExcused) {
  // A declared drift spike must pass the physical-drift contract through
  // exact compensation of the injected offset — not a widened envelope.
  OccupancyConfig cfg;
  cfg.horizon = Duration::seconds(20);
  cfg.clock_mode = net::ClockMode::kPhysical;
  cfg.faults = sim::parse_fault_plan("drift:2@5+10:500");
  cfg.check = true;

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  EXPECT_TRUE(run.check->clean()) << run.check->summary();
  const check::ContractResult* drift = run.check->contract("physical-drift");
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->violations_total, 0u);
  EXPECT_GT(drift->events_checked, 0u);
}

TEST(RaceAuditTest, UnexplainedInversionStillFailsWithFaultSpansSupplied) {
  // Mutation check: fault spans explain covered errors, and ONLY covered
  // errors — a fabricated inversion outside every span must still fail the
  // strict audit.
  std::vector<check::FaultSpan> spans;
  spans.push_back({SimTime::from_seconds(10), SimTime::from_seconds(11), 2,
                   check::FaultSpan::Cause::kCrash});
  check::AuditConfig audit_cfg;

  const check::ContractResult covered = check::audit_detector(
      "probe", /*races=*/{}, spans,
      /*fp_cause_times=*/{SimTime::from_seconds(10.5)},
      /*fn_occurrence_times=*/{}, audit_cfg);
  EXPECT_EQ(covered.violations_total, 0u);

  const check::ContractResult uncovered = check::audit_detector(
      "probe", /*races=*/{}, spans,
      /*fp_cause_times=*/{SimTime::from_seconds(20)},
      /*fn_occurrence_times=*/{SimTime::from_seconds(2)}, audit_cfg);
  EXPECT_EQ(uncovered.violations_total, 2u);
  ASSERT_GE(uncovered.violations.size(), 1u);
  EXPECT_EQ(uncovered.violations[0].kind,
            check::ViolationKind::kUnexplainedFalsePositive);
  EXPECT_NE(uncovered.violations[0].detail.find("recorded fault"),
            std::string::npos);
}

TEST(CheckedOccupancyTest, CheckAutoEnablesTracing) {
  OccupancyConfig cfg;
  cfg.horizon = Duration::seconds(10);
  cfg.check = true;
  ASSERT_EQ(cfg.trace_capacity, 0u);

  const OccupancyRunResult run = run_occupancy_experiment(cfg);
  ASSERT_TRUE(run.check.has_value());
  EXPECT_GT(run.trace.size(), 0u);
  EXPECT_EQ(run.trace_evicted, 0u);
}

TEST(RaceScanTest, FindsPlantedDeltaRaceAndInversion) {
  core::ObservationLog log;
  log.num_processes = 3;
  auto update = [](ProcessId pid, SimTime sensed, SimTime delivered) {
    core::ReceivedUpdate u;
    u.reporter = pid;
    u.report.true_sense_time = sensed;
    u.delivered_at = delivered;
    return u;
  };
  const SimTime t0 = SimTime::zero();
  // P2's sense at t=1.001s is delivered *before* P1's at t=1.000s: a 1 ms
  // race, inverted. P1's second sense at t=5s races with nothing.
  log.updates.push_back(update(2, t0 + 1_s + 1_ms, t0 + 1_s + 20_ms));
  log.updates.push_back(update(1, t0 + 1_s, t0 + 1_s + 30_ms));
  log.updates.push_back(update(1, t0 + 5_s, t0 + 5_s + 10_ms));

  check::RaceScanConfig scan;
  scan.window = 100_ms;
  const auto races = check::scan_races(log, scan);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].pid_a, 1);
  EXPECT_EQ(races[0].pid_b, 2);
  EXPECT_EQ(races[0].gap, 1_ms);
  EXPECT_TRUE(races[0].delivery_inverted);

  // An error inside the race span is explained; one far away is not.
  const auto ok = check::audit_detector(
      "probe", races, {t0 + 1_s}, {}, check::AuditConfig{});
  EXPECT_EQ(ok.violations_total, 0u);
  const auto bad = check::audit_detector(
      "probe", races, {t0 + 5_s}, {t0 + 8_s}, check::AuditConfig{});
  EXPECT_EQ(bad.violations_total, 2u);
  ASSERT_EQ(bad.violations.size(), 2u);
  EXPECT_EQ(bad.violations[0].kind,
            check::ViolationKind::kUnexplainedFalsePositive);
  EXPECT_EQ(bad.violations[1].kind,
            check::ViolationKind::kUnexplainedFalseNegative);
}

}  // namespace
}  // namespace psn::analysis
