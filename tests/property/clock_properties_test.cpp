// Property tests over randomly generated message-passing executions:
// the Mattern/Fidge vector clock must *characterize* happens-before
// (stamp order ⇔ causal order), the Lamport clock must be *consistent* with
// it (causal order ⇒ stamp order), and scalar strobes must be weaker than
// vector strobes in exactly the documented way.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "clocks/lamport.hpp"
#include "clocks/strobe_scalar.hpp"
#include "clocks/strobe_vector.hpp"
#include "clocks/vector_clock.hpp"
#include "common/rng.hpp"

namespace psn::clocks {
namespace {

constexpr std::size_t kProcesses = 4;
constexpr std::size_t kOps = 60;

struct RandomExecution {
  struct Event {
    ProcessId pid;
    ScalarStamp lamport;
    VectorStamp vector;
    // Direct causal predecessors (for ground-truth happens-before).
    std::vector<std::size_t> preds;
  };
  std::vector<Event> events;
  // Transitive closure of causality: hb[a][b] == true iff a → b.
  std::vector<std::vector<bool>> hb;

  void compute_closure() {
    const std::size_t n = events.size();
    hb.assign(n, std::vector<bool>(n, false));
    // Events are created in a valid topological order, so one forward pass
    // suffices.
    for (std::size_t b = 0; b < n; ++b) {
      for (const std::size_t a : events[b].preds) {
        hb[a][b] = true;
        for (std::size_t c = 0; c < n; ++c) {
          if (hb[c][a]) hb[c][b] = true;
        }
      }
    }
  }
};

/// Generates a random execution: internal events, sends, and receives, with
/// ground-truth causality tracked explicitly.
RandomExecution generate(std::uint64_t seed) {
  Rng rng(seed);
  RandomExecution exec;

  std::vector<LamportClock> lamports;
  std::vector<MatternVectorClock> vectors;
  std::vector<std::size_t> last_event(kProcesses, SIZE_MAX);
  for (ProcessId p = 0; p < kProcesses; ++p) {
    lamports.emplace_back(p);
    vectors.emplace_back(p, kProcesses);
  }

  struct InFlight {
    ProcessId to;
    std::size_t send_event;
    ScalarStamp lamport;
    VectorStamp vector;
  };
  std::deque<InFlight> network;

  auto record = [&](ProcessId p, ScalarStamp ls, VectorStamp vs,
                    std::vector<std::size_t> preds) {
    if (last_event[p] != SIZE_MAX) preds.push_back(last_event[p]);
    exec.events.push_back({p, ls, vs, std::move(preds)});
    last_event[p] = exec.events.size() - 1;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(kProcesses) - 1));
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 0) {  // internal event
      record(p, lamports[p].tick(), vectors[p].tick(), {});
    } else if (kind == 1) {  // send to a random other process
      auto q = static_cast<ProcessId>(
          rng.uniform_int(0, static_cast<std::int64_t>(kProcesses) - 1));
      if (q == p) q = static_cast<ProcessId>((q + 1) % kProcesses);
      const ScalarStamp ls = lamports[p].on_send();
      const VectorStamp vs = vectors[p].on_send();
      record(p, ls, vs, {});
      network.push_back({q, exec.events.size() - 1, ls, vs});
    } else if (!network.empty()) {  // receive the oldest in-flight message
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(network.size()) - 1));
      const InFlight msg = network[idx];
      network.erase(network.begin() + static_cast<std::ptrdiff_t>(idx));
      const ProcessId q = msg.to;
      const ScalarStamp ls = lamports[q].on_receive(msg.lamport);
      const VectorStamp vs = vectors[q].on_receive(msg.vector);
      record(q, ls, vs, {msg.send_event});
    }
  }
  exec.compute_closure();
  return exec;
}

class ClockPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockPropertyTest, VectorClockCharacterizesCausality) {
  const RandomExecution exec = generate(GetParam());
  const std::size_t n = exec.events.size();
  ASSERT_GT(n, 10u);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const bool causal = exec.hb[a][b];
      const bool stamped =
          happens_before(exec.events[a].vector, exec.events[b].vector);
      EXPECT_EQ(causal, stamped)
          << "event " << a << " vs " << b << ": causality "
          << (causal ? "→" : "∦") << " but stamps say "
          << to_string(compare(exec.events[a].vector, exec.events[b].vector));
    }
  }
}

TEST_P(ClockPropertyTest, LamportClockConsistentWithCausality) {
  const RandomExecution exec = generate(GetParam());
  for (std::size_t a = 0; a < exec.events.size(); ++a) {
    for (std::size_t b = 0; b < exec.events.size(); ++b) {
      if (exec.hb[a][b]) {
        EXPECT_LT(exec.events[a].lamport, exec.events[b].lamport)
            << "causal order not reflected in Lamport stamps";
      }
    }
  }
}

TEST_P(ClockPropertyTest, ConcurrentEventsGetConcurrentVectorStamps) {
  const RandomExecution exec = generate(GetParam());
  std::size_t concurrent_pairs = 0;
  for (std::size_t a = 0; a < exec.events.size(); ++a) {
    for (std::size_t b = a + 1; b < exec.events.size(); ++b) {
      if (!exec.hb[a][b] && !exec.hb[b][a]) {
        concurrent_pairs++;
        EXPECT_TRUE(concurrent(exec.events[a].vector, exec.events[b].vector));
      }
    }
  }
  EXPECT_GT(concurrent_pairs, 0u) << "degenerate execution";
}

TEST_P(ClockPropertyTest, LamportTotalOrderExtendsCausality) {
  // Sorting by (value, pid) must be a linear extension of happens-before.
  const RandomExecution exec = generate(GetParam());
  std::vector<std::size_t> order(exec.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return exec.events[a].lamport < exec.events[b].lamport;
  });
  std::vector<std::size_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (std::size_t a = 0; a < exec.events.size(); ++a) {
    for (std::size_t b = 0; b < exec.events.size(); ++b) {
      if (exec.hb[a][b]) {
        EXPECT_LT(position[a], position[b]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Strobe-clock property: if every strobe is delivered before the next
/// relevant event anywhere (the Δ → 0 regime), the strobe scalar order and
/// strobe vector order agree on every pair of sense events (paper §4.2.3
/// point 5).
class StrobeDeltaZeroTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrobeDeltaZeroTest, ScalarEqualsVectorWhenStrobesOutpaceEvents) {
  Rng rng(GetParam());
  constexpr std::size_t kN = 5;
  std::vector<StrobeScalarClock> scalars;
  std::vector<StrobeVectorClock> vectors;
  for (ProcessId p = 0; p < kN; ++p) {
    scalars.emplace_back(p);
    vectors.emplace_back(p, kN);
  }
  struct Stamps {
    ScalarStamp s;
    VectorStamp v;
  };
  std::vector<Stamps> stamps;
  for (int e = 0; e < 40; ++e) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(kN) - 1));
    const ScalarStamp s = scalars[p].on_relevant_event();
    const VectorStamp v = vectors[p].on_relevant_event();
    stamps.push_back({s, v});
    // Δ = 0: everyone receives the strobe before anything else happens.
    for (ProcessId q = 0; q < kN; ++q) {
      if (q == p) continue;
      scalars[q].on_strobe(s);
      vectors[q].on_strobe(v);
    }
  }
  // With instant strobes the vector order is total and must agree with the
  // scalar (value, pid) order.
  for (std::size_t a = 0; a < stamps.size(); ++a) {
    for (std::size_t b = 0; b < stamps.size(); ++b) {
      if (a == b) continue;
      const Ordering vord = compare(stamps[a].v, stamps[b].v);
      EXPECT_NE(vord, Ordering::kConcurrent) << "Δ=0 left a race";
      const Ordering sord = compare(stamps[a].s, stamps[b].s);
      if (vord == Ordering::kBefore) {
        EXPECT_EQ(sord, Ordering::kBefore);
      }
      if (vord == Ordering::kAfter) {
        EXPECT_EQ(sord, Ordering::kAfter);
      }
    }
  }
}

TEST_P(StrobeDeltaZeroTest, DelayedStrobesCreateRaces) {
  // Control experiment: withhold the strobes entirely and every cross-process
  // pair must be a race under vector stamps, invisible under scalar stamps.
  Rng rng(GetParam() + 1000);
  constexpr std::size_t kN = 3;
  std::vector<StrobeScalarClock> scalars;
  std::vector<StrobeVectorClock> vectors;
  for (ProcessId p = 0; p < kN; ++p) {
    scalars.emplace_back(p);
    vectors.emplace_back(p, kN);
  }
  struct Stamped {
    ProcessId pid;
    ScalarStamp s;
    VectorStamp v;
  };
  std::vector<Stamped> stamps;
  for (int e = 0; e < 15; ++e) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(kN) - 1));
    stamps.push_back(
        {p, scalars[p].on_relevant_event(), vectors[p].on_relevant_event()});
  }
  for (std::size_t a = 0; a < stamps.size(); ++a) {
    for (std::size_t b = 0; b < stamps.size(); ++b) {
      if (stamps[a].pid == stamps[b].pid) continue;
      EXPECT_TRUE(concurrent(stamps[a].v, stamps[b].v));
      EXPECT_NE(compare(stamps[a].s, stamps[b].s), Ordering::kConcurrent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrobeDeltaZeroTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace psn::clocks
