// Parser round-trip fuzzing: random expression trees are printed with
// Expr::to_string and re-parsed; the two must evaluate identically on
// random states. Catches precedence/associativity drift between printer
// and parser.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/predicate_parser.hpp"

namespace psn::core {
namespace {

class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  ExprPtr generate(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_.uniform_int(0, 7)) {
      case 0: return leaf();
      case 1:
        return unary(rng_.bernoulli(0.5) ? UnaryOp::kNeg : UnaryOp::kNot,
                     generate(depth - 1));
      case 2:
        return binary(arith_op(), generate(depth - 1), generate(depth - 1));
      case 3:
        return binary(cmp_op(), generate(depth - 1), generate(depth - 1));
      case 4:
        return binary(BinaryOp::kAnd, generate(depth - 1),
                      generate(depth - 1));
      case 5:
        return binary(BinaryOp::kOr, generate(depth - 1), generate(depth - 1));
      default:
        return binary(arith_op(), generate(depth - 1), leaf());
    }
  }

  GlobalState random_state() {
    GlobalState s;
    for (const char* name : {"x", "y", "temp"}) {
      for (ProcessId pid = 0; pid < 3; ++pid) {
        s.set(VarRef{pid, name}, std::floor(rng_.uniform(-10.0, 10.0)));
      }
    }
    return s;
  }

 private:
  ExprPtr leaf() {
    switch (rng_.uniform_int(0, 3)) {
      case 0:
        return constant(std::floor(rng_.uniform(0.0, 100.0)));
      case 1: {
        const char* names[] = {"x", "y", "temp"};
        return var(static_cast<ProcessId>(rng_.uniform_int(0, 2)),
                   names[rng_.uniform_int(0, 2)]);
      }
      case 2: {
        const AggregateOp ops[] = {AggregateOp::kSum, AggregateOp::kMin,
                                   AggregateOp::kMax, AggregateOp::kCount};
        const char* names[] = {"x", "y", "temp"};
        return aggregate(ops[rng_.uniform_int(0, 3)],
                         names[rng_.uniform_int(0, 2)]);
      }
      default:
        return constant(rng_.bernoulli(0.5) ? 1.0 : 0.0);
    }
  }

  BinaryOp arith_op() {
    // Division omitted: a random denominator hitting zero throws by design.
    const BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul};
    return ops[rng_.uniform_int(0, 2)];
  }

  BinaryOp cmp_op() {
    const BinaryOp ops[] = {BinaryOp::kLt, BinaryOp::kLe, BinaryOp::kGt,
                            BinaryOp::kGe, BinaryOp::kEq, BinaryOp::kNe};
    return ops[rng_.uniform_int(0, 5)];
  }

  Rng rng_;
};

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, PrintParseRoundTripPreservesSemantics) {
  ExprGenerator gen(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const ExprPtr original = gen.generate(4);
    const std::string text = original->to_string();
    ExprPtr reparsed;
    ASSERT_NO_THROW(reparsed = parse_expr(text)) << text;
    for (int probe = 0; probe < 5; ++probe) {
      const GlobalState state = gen.random_state();
      EXPECT_DOUBLE_EQ(original->evaluate(state), reparsed->evaluate(state))
          << "round-trip diverged for: " << text;
    }
    // Printing is a fixed point after one round trip.
    EXPECT_EQ(reparsed->to_string(), parse_expr(reparsed->to_string())->to_string());
  }
}

TEST_P(ParserFuzzTest, ClassificationStableUnderRoundTrip) {
  ExprGenerator gen(GetParam() + 5000);
  for (int trial = 0; trial < 30; ++trial) {
    const ExprPtr original = gen.generate(3);
    const Predicate p1("a", original);
    const Predicate p2("b", parse_expr(original->to_string()));
    EXPECT_EQ(p1.is_conjunctive(), p2.is_conjunctive())
        << original->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace psn::core
