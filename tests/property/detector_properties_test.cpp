// End-to-end property sweeps over the occupancy experiment, parameterized by
// seed: the invariants the paper states must hold on EVERY run, not just on
// average.

#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "clocks/timestamp.hpp"

namespace psn::analysis {
namespace {

using namespace psn::time_literals;

class DetectorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  OccupancyConfig config() const {
    OccupancyConfig cfg;
    cfg.doors = 3;
    cfg.capacity = 60;
    cfg.movement_rate = 15.0;
    cfg.delta = 80_ms;
    cfg.horizon = 25_s;
    cfg.seed = GetParam();
    return cfg;
  }
};

TEST_P(DetectorPropertyTest, ScalarDetectorNeverEmitsBorderline) {
  const auto run = run_occupancy_experiment(config());
  for (const auto& d : run.outcome("strobe-scalar").detections) {
    EXPECT_FALSE(d.borderline);
  }
  for (const auto& d : run.outcome("physical-eps").detections) {
    EXPECT_FALSE(d.borderline);
  }
}

TEST_P(DetectorPropertyTest, DetectionsAlternateTruthValues) {
  // Every detector's output is a valid transition stream: strictly
  // alternating to_true / to_false, starting with to_true (φ is false on the
  // empty state for this predicate).
  const auto run = run_occupancy_experiment(config());
  for (const auto& out : run.outcomes) {
    bool expect_true = true;
    for (const auto& d : out.detections) {
      EXPECT_EQ(d.to_true, expect_true) << out.detector;
      expect_true = !expect_true;
    }
  }
}

TEST_P(DetectorPropertyTest, DetectionTimesAreMonotone) {
  const auto run = run_occupancy_experiment(config());
  for (const auto& out : run.outcomes) {
    for (std::size_t i = 1; i < out.detections.size(); ++i) {
      EXPECT_GE(out.detections[i].detected_at,
                out.detections[i - 1].detected_at)
          << out.detector;
    }
  }
}

TEST_P(DetectorPropertyTest, PhysicalPerfectWithTinyEpsilonAndSparseEvents) {
  // ε = 1 us while inter-event gaps are ~70 ms: the physical detector sees
  // the exact true order — zero FP/FN, every time.
  OccupancyConfig cfg = config();
  cfg.movement_rate = 8.0;
  cfg.sync_epsilon = 1_us;
  const auto run = run_occupancy_experiment(cfg);
  const auto& phys = run.outcome("physical-eps").score;
  EXPECT_EQ(phys.false_positives, 0u);
  EXPECT_EQ(phys.false_negatives, 0u);
}

TEST_P(DetectorPropertyTest, SynchronousDeltaZeroAllDetectorsAgree) {
  // E9 / paper §4.2.3 point 5: at Δ = 0 with a strobe per event, the scalar
  // strobe detector equals the vector strobe detector — and both are exact.
  OccupancyConfig cfg = config();
  cfg.delay_kind = core::DelayKind::kSynchronous;
  cfg.delta = Duration::zero();
  cfg.score_tolerance = 1_ms;
  const auto run = run_occupancy_experiment(cfg);

  const auto& scalar = run.outcome("strobe-scalar");
  const auto& vector = run.outcome("strobe-vector");
  ASSERT_EQ(scalar.detections.size(), vector.detections.size());
  for (std::size_t i = 0; i < scalar.detections.size(); ++i) {
    EXPECT_EQ(scalar.detections[i].to_true, vector.detections[i].to_true);
    EXPECT_EQ(scalar.detections[i].cause_true_time,
              vector.detections[i].cause_true_time);
    EXPECT_FALSE(vector.detections[i].borderline) << "race at Δ=0?";
  }
  for (const auto& out : run.outcomes) {
    EXPECT_EQ(out.score.false_positives, 0u) << out.detector;
    EXPECT_EQ(out.score.false_negatives, 0u) << out.detector;
  }
}

TEST_P(DetectorPropertyTest, StrobeStampsOrderedWhenEventsFarApart) {
  // Sense events separated by more than the end-to-end Δ bound must carry
  // ordered (never concurrent) strobe vector stamps.
  const auto cfg = config();
  core::SystemConfig sys;
  sys.num_sensors = cfg.doors;
  sys.sim.seed = cfg.seed;
  sys.sim.horizon = SimTime::zero() + cfg.horizon;
  sys.delta = cfg.delta;
  core::PervasiveSystem system(sys);

  world::ExhibitionHallConfig hall_cfg;
  hall_cfg.doors = static_cast<int>(cfg.doors);
  hall_cfg.capacity = cfg.capacity;
  hall_cfg.movement_rate = cfg.movement_rate;
  hall_cfg.initial_occupancy = 0;
  world::ExhibitionHall hall(system.world(), hall_cfg,
                             system.sim().rng_for("hall"));
  for (int k = 0; k < hall_cfg.doors; ++k) {
    const auto pid = static_cast<ProcessId>(k + 1);
    system.assign(hall.door_object(k), "entered", pid);
    system.assign(hall.door_object(k), "exited", pid);
  }
  hall.start();
  system.run();

  const auto& updates = system.log().updates;
  const Duration bound = system.delta_bound();
  std::size_t checked = 0;
  for (std::size_t a = 0; a < updates.size(); ++a) {
    for (std::size_t b = a + 1; b < updates.size() && b < a + 40; ++b) {
      const auto& ua = updates[a].report;
      const auto& ub = updates[b].report;
      const Duration gap = (ub.true_sense_time - ua.true_sense_time).abs();
      if (gap <= bound) continue;
      checked++;
      const auto& early =
          ua.true_sense_time < ub.true_sense_time ? ua : ub;
      const auto& late = ua.true_sense_time < ub.true_sense_time ? ub : ua;
      EXPECT_NE(clocks::compare(early.strobe_vector, late.strobe_vector),
                clocks::Ordering::kConcurrent)
          << "events " << gap.to_string() << " apart (> Δ) raced";
      // And the scalar order must agree with true time.
      EXPECT_LT(early.strobe_scalar.value, late.strobe_scalar.value + 1);
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_P(DetectorPropertyTest, LossyRunStillProducesValidStream) {
  OccupancyConfig cfg = config();
  cfg.loss_probability = 0.2;
  const auto run = run_occupancy_experiment(cfg);
  for (const auto& out : run.outcomes) {
    bool expect_true = true;
    for (const auto& d : out.detections) {
      EXPECT_EQ(d.to_true, expect_true) << out.detector << " under loss";
      expect_true = !expect_true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace psn::analysis
