#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "net/delay_model.hpp"
#include "net/loss_model.hpp"

namespace psn::net {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(SynchronousDelayTest, AlwaysZero) {
  SynchronousDelay d;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), Duration::zero());
  EXPECT_EQ(d.bound(), Duration::zero());
}

TEST(FixedDelayTest, Constant) {
  FixedDelay d(25_ms);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 25_ms);
  EXPECT_EQ(d.bound(), 25_ms);
  EXPECT_THROW(FixedDelay(-(1_ms)), InvariantError);
}

TEST(UniformBoundedDelayTest, SamplesWithinBounds) {
  UniformBoundedDelay d(10_ms, 100_ms);
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 10000; ++i) {
    const Duration v = d.sample(rng);
    EXPECT_GE(v, 10_ms);
    EXPECT_LE(v, 100_ms);
    s.add(v.to_seconds());
  }
  EXPECT_NEAR(s.mean(), 0.055, 0.002);
  EXPECT_EQ(d.bound(), 100_ms);
}

TEST(UniformBoundedDelayTest, WithBoundHelper) {
  const auto d = UniformBoundedDelay::with_bound(200_ms);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Duration v = d->sample(rng);
    EXPECT_GE(v, 20_ms);
    EXPECT_LE(v, 200_ms);
  }
}

TEST(UniformBoundedDelayTest, Validation) {
  EXPECT_THROW(UniformBoundedDelay(10_ms, 5_ms), InvariantError);
  EXPECT_THROW(UniformBoundedDelay(-(1_ms), 5_ms), InvariantError);
}

TEST(ExponentialDelayTest, MeanAndUnboundedness) {
  ExponentialDelay d(50_ms);
  Rng rng(5);
  RunningStats s;
  Duration max_seen = Duration::zero();
  for (int i = 0; i < 20000; ++i) {
    const Duration v = d.sample(rng);
    s.add(v.to_seconds());
    max_seen = std::max(max_seen, v);
  }
  EXPECT_NEAR(s.mean(), 0.050, 0.002);
  EXPECT_GT(max_seen, 200_ms);  // heavy tail actually shows up
  EXPECT_EQ(d.bound(), Duration::max());
}

TEST(ExponentialDelayTest, FloorRespected) {
  ExponentialDelay d(10_ms, 5_ms);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(d.sample(rng), 5_ms);
}

TEST(NoLossTest, NeverDrops) {
  NoLoss l;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(l.drop(t(i), rng));
}

TEST(BernoulliLossTest, RateMatches) {
  BernoulliLoss l(0.2);
  Rng rng(8);
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) drops += l.drop(t(0), rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.02);
  EXPECT_THROW(BernoulliLoss(1.2), InvariantError);
}

TEST(GilbertElliottLossTest, BurstsAreCorrelated) {
  // Almost-deterministic regime: long bad bursts, lossless good state.
  GilbertElliottLoss l(0.01, 0.05, 0.0, 1.0);
  Rng rng(9);
  // Measure the average run length of consecutive drops; correlated loss
  // should produce runs far longer than Bernoulli at the same average rate.
  int total_drops = 0, runs = 0;
  bool in_run = false;
  for (int i = 0; i < 100000; ++i) {
    const bool dropped = l.drop(t(0), rng);
    total_drops += dropped ? 1 : 0;
    if (dropped && !in_run) runs++;
    in_run = dropped;
  }
  ASSERT_GT(runs, 0);
  const double mean_run =
      static_cast<double>(total_drops) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 5.0);
}

TEST(ScheduledBurstLossTest, DropsOnlyInsideWindows) {
  ScheduledBurstLoss l({{t(100), t(200)}, {t(500), t(600)}});
  Rng rng(10);
  EXPECT_FALSE(l.drop(t(99), rng));
  EXPECT_TRUE(l.drop(t(100), rng));
  EXPECT_TRUE(l.drop(t(199), rng));
  EXPECT_FALSE(l.drop(t(200), rng));  // end exclusive
  EXPECT_TRUE(l.drop(t(550), rng));
  EXPECT_FALSE(l.drop(t(700), rng));
}

TEST(ScheduledBurstLossTest, RejectsInvertedWindow) {
  EXPECT_THROW(ScheduledBurstLoss({{t(5), t(1)}}), InvariantError);
}

TEST(DelayModelTest, NamesAreInformative) {
  EXPECT_EQ(SynchronousDelay().name(), "synchronous");
  EXPECT_NE(FixedDelay(1_ms).name().find("fixed"), std::string::npos);
  EXPECT_NE(UniformBoundedDelay(0_ms, 1_ms).name().find("uniform"),
            std::string::npos);
  EXPECT_NE(ExponentialDelay(1_ms).name().find("exponential"),
            std::string::npos);
}

}  // namespace
}  // namespace psn::net
