#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace psn::net {
namespace {

using namespace psn::time_literals;

struct Fixture {
  explicit Fixture(Overlay overlay,
                   std::unique_ptr<DelayModel> delay =
                       std::make_unique<FixedDelay>(Duration::millis(10)),
                   std::unique_ptr<LossModel> loss = std::make_unique<NoLoss>())
      : sim([] {
          sim::SimConfig cfg;
          cfg.horizon = SimTime::zero() + 100_s;
          return cfg;
        }()),
        transport(sim, std::move(overlay), std::move(delay), std::move(loss),
                  Rng(7)) {
    for (ProcessId p = 0; p < transport.overlay().size(); ++p) {
      transport.register_handler(p, [this, p](const Message& msg) {
        deliveries.push_back({p, msg});
      });
    }
  }

  Message computation(ProcessId src, ProcessId dst) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.kind = MessageKind::kComputation;
    ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(transport.overlay().size());
    payload.tag = "t";
    m.payload = payload;
    return m;
  }

  sim::Simulation sim;
  Transport transport;
  std::vector<std::pair<ProcessId, Message>> deliveries;
};

TEST(TransportTest, UnicastDeliversAfterDelay) {
  Fixture f(Overlay::complete(3));
  f.transport.unicast(f.computation(0, 2));
  EXPECT_TRUE(f.deliveries.empty());  // not synchronous
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].first, 2u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at, SimTime::zero() + 10_ms);
  EXPECT_EQ(f.deliveries[0].second.sent_at, SimTime::zero());
}

TEST(TransportTest, BroadcastReachesAllOthers) {
  Fixture f(Overlay::complete(5));
  f.transport.broadcast(f.computation(2, kNoProcess));
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 4u);
  for (const auto& [pid, msg] : f.deliveries) {
    EXPECT_NE(pid, 2u);
    EXPECT_EQ(msg.dst, pid);
  }
}

TEST(TransportTest, MultiHopDelayScalesWithDistance) {
  Fixture f(Overlay::line(4));  // 0-1-2-3
  f.transport.unicast(f.computation(0, 3));
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at,
            SimTime::zero() + 30_ms);  // 3 hops x 10 ms
}

TEST(TransportTest, UnreachableDestinationCounted) {
  Overlay disconnected(3);
  disconnected.add_edge(0, 1);  // node 2 isolated
  Fixture f(std::move(disconnected));
  f.transport.unicast(f.computation(0, 2));
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.transport.stats().of(MessageKind::kComputation).unreachable, 1u);
}

TEST(TransportTest, LossDropsAndCounts) {
  Fixture f(Overlay::complete(2), std::make_unique<FixedDelay>(1_ms),
            std::make_unique<BernoulliLoss>(1.0));
  f.transport.unicast(f.computation(0, 1));
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  const auto& ks = f.transport.stats().of(MessageKind::kComputation);
  EXPECT_EQ(ks.sent, 1u);
  EXPECT_EQ(ks.dropped, 1u);
  EXPECT_EQ(ks.delivered, 0u);
}

TEST(TransportTest, StatsAccounting) {
  Fixture f(Overlay::complete(3));
  f.transport.broadcast(f.computation(0, kNoProcess));
  f.transport.unicast(f.computation(1, 2));
  f.sim.run();
  const auto& ks = f.transport.stats().of(MessageKind::kComputation);
  EXPECT_EQ(ks.sent, 3u);
  EXPECT_EQ(ks.delivered, 3u);
  EXPECT_GT(ks.bytes_sent, 0u);
  EXPECT_EQ(f.transport.stats().total_sent(), 3u);
  EXPECT_EQ(f.transport.stats().total_bytes(), ks.bytes_sent);
}

TEST(TransportTest, SelfAddressedRejected) {
  Fixture f(Overlay::complete(2));
  EXPECT_THROW(f.transport.unicast(f.computation(1, 1)), InvariantError);
}

TEST(TransportTest, OutOfRangeEndpointsRejected) {
  Fixture f(Overlay::complete(2));
  EXPECT_THROW(f.transport.unicast(f.computation(0, 9)), InvariantError);
}

TEST(TransportTest, SynchronousDeliveryAtSameInstant) {
  Fixture f(Overlay::complete(2), std::make_unique<SynchronousDelay>());
  f.transport.unicast(f.computation(0, 1));
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at, SimTime::zero());
}

TEST(WireBytesTest, SenseReportModesOrdered) {
  SenseReportPayload p;
  p.strobe_vector = clocks::VectorStamp(8);
  // physical < scalar < vector for n > 1.
  EXPECT_LT(p.wire_bytes_physical_mode(), p.wire_bytes_scalar_mode());
  EXPECT_LT(p.wire_bytes_scalar_mode(), p.wire_bytes_vector_mode());
  // Vector mode grows linearly with n.
  SenseReportPayload big;
  big.strobe_vector = clocks::VectorStamp(16);
  EXPECT_EQ(big.wire_bytes_vector_mode() - p.wire_bytes_vector_mode(),
            8u * 8u);
}

TEST(WireBytesTest, MessageKindNames) {
  EXPECT_STREQ(to_string(MessageKind::kStrobe), "strobe");
  EXPECT_STREQ(to_string(MessageKind::kComputation), "computation");
  EXPECT_STREQ(to_string(MessageKind::kSync), "sync");
  EXPECT_STREQ(to_string(MessageKind::kActuation), "actuation");
}

}  // namespace
}  // namespace psn::net
