#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/error.hpp"

namespace psn::net {
namespace {

using namespace psn::time_literals;

struct Fixture {
  explicit Fixture(Overlay overlay,
                   std::unique_ptr<DelayModel> delay =
                       std::make_unique<FixedDelay>(Duration::millis(10)),
                   std::unique_ptr<LossModel> loss = std::make_unique<NoLoss>())
      : sim([] {
          sim::SimConfig cfg;
          cfg.horizon = SimTime::zero() + 100_s;
          return cfg;
        }()),
        transport(sim, std::move(overlay), std::move(delay), std::move(loss),
                  Rng(7)) {
    for (ProcessId p = 0; p < transport.overlay().size(); ++p) {
      transport.register_handler(p, [this, p](const Message& msg) {
        deliveries.push_back({p, msg});
      });
    }
  }

  Message computation(ProcessId src, ProcessId dst) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.kind = MessageKind::kComputation;
    ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(transport.overlay().size());
    // Built via += rather than = "t": GCC 12's -Wrestrict false-fires on
    // the const char* assign inlined into the shared-payload move
    // (PR 105651; same workaround as predicate.cpp).
    payload.tag += 't';
    m.payload = std::move(payload);
    return m;
  }

  Message strobe(ProcessId src, ProcessId dst) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.kind = MessageKind::kStrobe;
    SenseReportPayload payload;
    payload.strobe_vector = clocks::VectorStamp(transport.overlay().size());
    m.payload = payload;
    return m;
  }

  sim::Simulation sim;
  Transport transport;
  std::vector<std::pair<ProcessId, Message>> deliveries;
};

TEST(TransportTest, UnicastDeliversAfterDelay) {
  Fixture f(Overlay::complete(3));
  f.transport.unicast(f.computation(0, 2));
  EXPECT_TRUE(f.deliveries.empty());  // not synchronous
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].first, 2u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at, SimTime::zero() + 10_ms);
  EXPECT_EQ(f.deliveries[0].second.sent_at, SimTime::zero());
}

TEST(TransportTest, BroadcastReachesAllOthers) {
  Fixture f(Overlay::complete(5));
  f.transport.broadcast(f.computation(2, kNoProcess));
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 4u);
  for (const auto& [pid, msg] : f.deliveries) {
    EXPECT_NE(pid, 2u);
    EXPECT_EQ(msg.dst, pid);
  }
}

TEST(TransportTest, MultiHopDelayScalesWithDistance) {
  Fixture f(Overlay::line(4));  // 0-1-2-3
  f.transport.unicast(f.computation(0, 3));
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at,
            SimTime::zero() + 30_ms);  // 3 hops x 10 ms
}

TEST(TransportTest, UnreachableDestinationCounted) {
  Overlay disconnected(3);
  disconnected.add_edge(0, 1);  // node 2 isolated
  Fixture f(std::move(disconnected));
  f.transport.unicast(f.computation(0, 2));
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.transport.stats().of(MessageKind::kComputation).unreachable, 1u);
}

// Regression: transmit() used to count sent/bytes_sent before discovering
// the destination was unreachable, so partition scenarios overstated radio
// traffic. A message that never leaves the node must not be "sent".
TEST(TransportTest, UnreachableNotCountedAsSent) {
  Overlay disconnected(3);
  disconnected.add_edge(0, 1);  // node 2 isolated
  Fixture f(std::move(disconnected));
  f.transport.unicast(f.computation(0, 2));
  f.transport.unicast(f.computation(0, 1));  // reachable control message
  f.sim.run();
  const auto& ks = f.transport.stats().of(MessageKind::kComputation);
  EXPECT_EQ(ks.unreachable, 1u);
  EXPECT_EQ(ks.sent, 1u);  // only the reachable one
  EXPECT_EQ(ks.bytes_sent, wire_bytes(f.computation(0, 1)));
  EXPECT_EQ(f.transport.stats().total_sent(), 1u);
}

TEST(TransportTest, LossDropsAndCounts) {
  Fixture f(Overlay::complete(2), std::make_unique<FixedDelay>(1_ms),
            std::make_unique<BernoulliLoss>(1.0));
  f.transport.unicast(f.computation(0, 1));
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  const auto& ks = f.transport.stats().of(MessageKind::kComputation);
  EXPECT_EQ(ks.sent, 1u);
  EXPECT_EQ(ks.dropped, 1u);
  EXPECT_EQ(ks.delivered, 0u);
}

TEST(TransportTest, StatsAccounting) {
  Fixture f(Overlay::complete(3));
  f.transport.broadcast(f.computation(0, kNoProcess));
  f.transport.unicast(f.computation(1, 2));
  f.sim.run();
  const auto& ks = f.transport.stats().of(MessageKind::kComputation);
  EXPECT_EQ(ks.sent, 3u);
  EXPECT_EQ(ks.delivered, 3u);
  EXPECT_GT(ks.bytes_sent, 0u);
  EXPECT_EQ(f.transport.stats().total_sent(), 3u);
  EXPECT_EQ(f.transport.stats().total_bytes(), ks.bytes_sent);
}

TEST(TransportTest, SelfAddressedRejected) {
  Fixture f(Overlay::complete(2));
  EXPECT_THROW(f.transport.unicast(f.computation(1, 1)), InvariantError);
}

TEST(TransportTest, OutOfRangeEndpointsRejected) {
  Fixture f(Overlay::complete(2));
  EXPECT_THROW(f.transport.unicast(f.computation(0, 9)), InvariantError);
}

TEST(TransportTest, SynchronousDeliveryAtSameInstant) {
  Fixture f(Overlay::complete(2), std::make_unique<SynchronousDelay>());
  f.transport.unicast(f.computation(0, 1));
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].second.delivered_at, SimTime::zero());
}

TEST(WireBytesTest, SenseReportModesOrdered) {
  SenseReportPayload p;
  p.strobe_vector = clocks::VectorStamp(8);
  // physical < scalar < vector for n > 1.
  EXPECT_LT(p.wire_bytes_physical_mode(), p.wire_bytes_scalar_mode());
  EXPECT_LT(p.wire_bytes_scalar_mode(), p.wire_bytes_vector_mode());
  // Vector mode grows linearly with n.
  SenseReportPayload big;
  big.strobe_vector = clocks::VectorStamp(16);
  EXPECT_EQ(big.wire_bytes_vector_mode() - p.wire_bytes_vector_mode(),
            8u * 8u);
}

// Golden per-mode sizes: header 12 + object 4 + attr 4 + value 8 = 28 base;
// scalar adds stamp 8 + pid 4, vector adds 8n + pid 4, physical adds stamp 8.
TEST(WireBytesTest, SenseReportGoldenSizesPerMode) {
  for (const std::size_t n : {2u, 4u, 9u, 33u}) {
    SenseReportPayload p;
    p.strobe_vector = clocks::VectorStamp(n);
    EXPECT_EQ(p.wire_bytes_scalar_mode(), 40u);
    EXPECT_EQ(p.wire_bytes_vector_mode(), 28u + 8u * n + 4u);
    EXPECT_EQ(p.wire_bytes_physical_mode(), 36u);
  }
}

// Regression: wire_bytes(msg) used to price every sense report at the vector
// payload regardless of the deployment's clock mode, so E7's scalar and
// physical byte columns were wrong. The mode-aware overload must dispatch.
TEST(WireBytesTest, ModeAwareOverloadDispatches) {
  Message m;
  m.kind = MessageKind::kStrobe;
  SenseReportPayload p;
  p.strobe_vector = clocks::VectorStamp(5);
  m.payload = p;
  EXPECT_EQ(wire_bytes(m, ClockMode::kScalarStrobe),
            p.wire_bytes_scalar_mode());
  EXPECT_EQ(wire_bytes(m, ClockMode::kVectorStrobe),
            p.wire_bytes_vector_mode());
  EXPECT_EQ(wire_bytes(m, ClockMode::kPhysical),
            p.wire_bytes_physical_mode());
  // The one-argument convenience form is the fattest (vector) pricing.
  EXPECT_EQ(wire_bytes(m), p.wire_bytes_vector_mode());
  // Mode only affects sense reports; computation payloads are unchanged.
  Message c;
  c.kind = MessageKind::kComputation;
  ComputationPayload cp;
  cp.stamps.causal_vector = clocks::VectorStamp(5);
  c.payload = cp;
  EXPECT_EQ(wire_bytes(c, ClockMode::kScalarStrobe), wire_bytes(c));
}

TEST(TransportTest, ActiveClockModePricesTheWire) {
  for (const ClockMode mode :
       {ClockMode::kScalarStrobe, ClockMode::kVectorStrobe,
        ClockMode::kPhysical}) {
    Fixture f(Overlay::complete(4));
    f.transport.set_clock_mode(mode);
    f.transport.broadcast(f.strobe(0, kNoProcess));
    f.sim.run();
    SenseReportPayload sample;
    sample.strobe_vector = clocks::VectorStamp(4);
    const auto& ks = f.transport.stats().of(MessageKind::kStrobe);
    EXPECT_EQ(ks.sent, 3u);
    EXPECT_EQ(ks.bytes_sent,
              3u * (mode == ClockMode::kScalarStrobe
                        ? sample.wire_bytes_scalar_mode()
                        : mode == ClockMode::kVectorStrobe
                              ? sample.wire_bytes_vector_mode()
                              : sample.wire_bytes_physical_mode()));
    // Shadow totals price the same traffic under all three modes at once.
    EXPECT_EQ(f.transport.stats().strobe_mode_bytes.of(mode), ks.bytes_sent);
    EXPECT_EQ(f.transport.stats().strobe_mode_bytes.scalar,
              3u * sample.wire_bytes_scalar_mode());
    EXPECT_EQ(f.transport.stats().strobe_mode_bytes.vector,
              3u * sample.wire_bytes_vector_mode());
    EXPECT_EQ(f.transport.stats().strobe_mode_bytes.physical,
              3u * sample.wire_bytes_physical_mode());
  }
}

TEST(WireBytesTest, MessageKindNames) {
  EXPECT_STREQ(to_string(MessageKind::kStrobe), "strobe");
  EXPECT_STREQ(to_string(MessageKind::kComputation), "computation");
  EXPECT_STREQ(to_string(MessageKind::kSync), "sync");
  EXPECT_STREQ(to_string(MessageKind::kActuation), "actuation");
}

TEST(WireBytesTest, ClockModeNames) {
  EXPECT_STREQ(to_string(ClockMode::kScalarStrobe), "scalar");
  EXPECT_STREQ(to_string(ClockMode::kVectorStrobe), "vector");
  EXPECT_STREQ(to_string(ClockMode::kPhysical), "physical");
}

}  // namespace
}  // namespace psn::net
