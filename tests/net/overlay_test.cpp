#include "net/overlay.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::net {
namespace {

TEST(OverlayTest, CompleteGraph) {
  const Overlay o = Overlay::complete(4);
  EXPECT_EQ(o.size(), 4u);
  for (ProcessId a = 0; a < 4; ++a) {
    EXPECT_EQ(o.neighbors(a).size(), 3u);
    for (ProcessId b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_TRUE(o.has_edge(a, b));
        EXPECT_EQ(o.hop_distance(a, b), 1u);
      }
    }
  }
  EXPECT_TRUE(o.is_connected());
}

TEST(OverlayTest, StarTopology) {
  const Overlay o = Overlay::star(5, /*hub=*/0);
  EXPECT_EQ(o.neighbors(0).size(), 4u);
  EXPECT_EQ(o.neighbors(3).size(), 1u);
  EXPECT_EQ(o.hop_distance(1, 2), 2u);  // via the hub
  EXPECT_EQ(o.hop_distance(0, 4), 1u);
  EXPECT_TRUE(o.is_connected());
}

TEST(OverlayTest, RingTopology) {
  const Overlay o = Overlay::ring(6);
  EXPECT_EQ(o.hop_distance(0, 3), 3u);
  EXPECT_EQ(o.hop_distance(0, 5), 1u);
  EXPECT_TRUE(o.is_connected());
}

TEST(OverlayTest, LineTopology) {
  const Overlay o = Overlay::line(5);
  EXPECT_EQ(o.hop_distance(0, 4), 4u);
  EXPECT_EQ(o.neighbors(0).size(), 1u);
  EXPECT_EQ(o.neighbors(2).size(), 2u);
}

TEST(OverlayTest, SingleNodeGraphs) {
  EXPECT_TRUE(Overlay::complete(1).is_connected());
  EXPECT_TRUE(Overlay::ring(1).is_connected());
  EXPECT_EQ(Overlay::line(1).hop_distance(0, 0), 0u);
}

TEST(OverlayTest, DynamicEdgeChanges) {
  Overlay o(3);
  EXPECT_FALSE(o.is_connected());
  o.add_edge(0, 1);
  o.add_edge(1, 2);
  EXPECT_TRUE(o.is_connected());
  EXPECT_EQ(o.hop_distance(0, 2), 2u);
  o.remove_edge(1, 2);
  EXPECT_FALSE(o.is_connected());
  EXPECT_EQ(o.hop_distance(0, 2), SIZE_MAX);
}

TEST(OverlayTest, DuplicateEdgeIgnored) {
  Overlay o(2);
  o.add_edge(0, 1);
  o.add_edge(0, 1);
  o.add_edge(1, 0);
  EXPECT_EQ(o.neighbors(0).size(), 1u);
}

TEST(OverlayTest, Validation) {
  Overlay o(2);
  EXPECT_THROW(o.add_edge(0, 0), InvariantError);
  EXPECT_THROW(o.add_edge(0, 5), InvariantError);
  EXPECT_THROW(Overlay(0), InvariantError);
  EXPECT_THROW(Overlay::star(3, 7), InvariantError);
}

}  // namespace
}  // namespace psn::net
