// ShardMap (DESIGN.md §14): contiguous pid-range partition with greedy
// cut-minimizing boundary placement. The properties pinned here are the
// ones the sharded runner's correctness leans on: full coverage by
// contiguous ranges, dense O(1) lookup agreeing with the fence posts,
// determinism, bounded imbalance, and sane cut counts on the overlays
// whose cuts are analytically known.

#include <gtest/gtest.h>

#include <cstddef>

#include "net/overlay.hpp"
#include "net/shard_map.hpp"

namespace psn::net {
namespace {

void expect_covers_contiguously(const ShardMap& map, std::size_t n) {
  const std::size_t k = map.num_shards();
  ASSERT_GE(k, 1u);
  EXPECT_EQ(map.size(), n);
  EXPECT_EQ(map.begin(0), 0u);
  EXPECT_EQ(map.end(k - 1), n);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < k; ++s) {
    ASSERT_LT(map.begin(s), map.end(s)) << "empty shard " << s;
    if (s + 1 < k) {
      EXPECT_EQ(map.end(s), map.begin(s + 1)) << "gap after shard " << s;
    }
    covered += map.shard_size(s);
    for (ProcessId p = map.begin(s); p < map.end(s); ++p) {
      EXPECT_EQ(map.shard_of(p), s) << "pid " << p;
    }
  }
  EXPECT_EQ(covered, n);
}

TEST(ShardMapTest, SingleShardOwnsEverythingAndCutsNothing) {
  const ShardMap map = ShardMap::partition(Overlay::complete(9), 1);
  expect_covers_contiguously(map, 9);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.cut_edges(), 0u);
}

TEST(ShardMapTest, OneShardPerProcessCutsEveryEdge) {
  const std::size_t n = 5;
  const ShardMap map = ShardMap::partition(Overlay::line(n), n);
  expect_covers_contiguously(map, n);
  EXPECT_EQ(map.num_shards(), n);
  for (ProcessId p = 0; p < n; ++p) EXPECT_EQ(map.shard_of(p), p);
  EXPECT_EQ(map.cut_edges(), n - 1);  // every line edge crosses a boundary
}

TEST(ShardMapTest, EveryTopologyIsCoveredContiguously) {
  const std::size_t n = 101;  // prime: every boundary lands off-center
  const Overlay overlays[] = {Overlay::complete(n), Overlay::star(n),
                              Overlay::ring(n), Overlay::line(n)};
  for (const Overlay& overlay : overlays) {
    for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                                std::size_t{8}, std::size_t{16}}) {
      const ShardMap map = ShardMap::partition(overlay, k);
      expect_covers_contiguously(map, n);
      EXPECT_EQ(map.num_shards(), k);
    }
  }
}

TEST(ShardMapTest, LineCutIsExactlyOneEdgePerBoundary) {
  // On a line every adjacent pair is an edge, so wherever the greedy slide
  // settles, each of the K-1 boundaries cuts exactly one edge.
  const ShardMap map = ShardMap::partition(Overlay::line(64), 4);
  EXPECT_EQ(map.cut_edges(), 3u);
}

TEST(ShardMapTest, StarCutCountsSpokesLeavingTheHubShard) {
  // All n-1 spokes touch hub 0 (shard 0); the uncut ones end inside shard 0.
  const std::size_t n = 12;
  const ShardMap map = ShardMap::partition(Overlay::star(n), 3);
  expect_covers_contiguously(map, n);
  EXPECT_EQ(map.cut_edges(), n - map.shard_size(0));
}

TEST(ShardMapTest, BalanceStaysWithinTheSlideSlack) {
  // Boundaries start at k·n/K and slide within ±n/(4K), so no shard can
  // deviate from n/K by more than 2·(n/(4K)) + 1.
  const std::size_t n = 1000;
  const std::size_t k = 8;
  const ShardMap map = ShardMap::partition(Overlay::ring(n), k);
  const std::size_t target = n / k;
  const std::size_t slack = 2 * (n / (4 * k)) + 1;
  for (std::size_t s = 0; s < k; ++s) {
    EXPECT_NEAR(static_cast<double>(map.shard_size(s)),
                static_cast<double>(target), static_cast<double>(slack))
        << "shard " << s;
  }
}

TEST(ShardMapTest, PartitionIsDeterministic) {
  const Overlay overlay = Overlay::star(257);
  const ShardMap a = ShardMap::partition(overlay, 7);
  const ShardMap b = ShardMap::partition(overlay, 7);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.begin(s), b.begin(s));
    EXPECT_EQ(a.end(s), b.end(s));
  }
  EXPECT_EQ(a.cut_edges(), b.cut_edges());
}

}  // namespace
}  // namespace psn::net
