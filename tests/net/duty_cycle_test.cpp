#include "net/duty_cycle.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace psn::net {
namespace {

using namespace psn::time_literals;

SimTime t(std::int64_t ms) { return SimTime::zero() + Duration::millis(ms); }

TEST(DutyCycleTest, AwakeWindows) {
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;
  EXPECT_TRUE(dc.is_awake(t(0)));
  EXPECT_TRUE(dc.is_awake(t(99)));
  EXPECT_FALSE(dc.is_awake(t(100)));
  EXPECT_FALSE(dc.is_awake(t(999)));
  EXPECT_TRUE(dc.is_awake(t(1000)));
  EXPECT_TRUE(dc.is_awake(t(2050)));
}

TEST(DutyCycleTest, PhaseShiftsWindows) {
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;
  dc.phase = 300_ms;
  EXPECT_FALSE(dc.is_awake(t(0)));
  EXPECT_TRUE(dc.is_awake(t(300)));
  EXPECT_TRUE(dc.is_awake(t(399)));
  EXPECT_FALSE(dc.is_awake(t(400)));
  EXPECT_TRUE(dc.is_awake(t(1350)));
}

TEST(DutyCycleTest, NextWake) {
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;
  EXPECT_EQ(dc.next_wake(t(50)), t(50));     // already awake
  EXPECT_EQ(dc.next_wake(t(100)), t(1000));  // window just closed
  EXPECT_EQ(dc.next_wake(t(999)), t(1000));
  EXPECT_EQ(dc.next_wake(t(1000)), t(1000));
  dc.phase = 250_ms;
  EXPECT_EQ(dc.next_wake(t(0)), t(250));
  EXPECT_EQ(dc.next_wake(t(351)), t(1250));
}

TEST(DutyCycleTest, DutyFractionAndWorstCase) {
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;
  EXPECT_DOUBLE_EQ(dc.duty_fraction(), 0.1);
  EXPECT_EQ(worst_case_wait(dc), 900_ms);
}

TEST(DutyCycleTest, Validity) {
  DutyCycle dc;
  EXPECT_TRUE(dc.valid());
  dc.window = dc.period + 1_ms;
  EXPECT_FALSE(dc.valid());
  dc.window = 10_ms;
  dc.phase = dc.period;
  EXPECT_FALSE(dc.valid());
}

TEST(DutyCycleTest, AlignPhases) {
  std::vector<DutyCycle> fleet(3);
  fleet[0].phase = 300_ms;
  fleet[1].phase = 50_ms;
  fleet[2].phase = 700_ms;
  align_phases(fleet);
  for (const auto& dc : fleet) EXPECT_EQ(dc.phase, 50_ms);
}

TEST(DutyCycleTransportTest, SleepDefersDelivery) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + 100_s;
  sim::Simulation sim(cfg);
  Transport transport(sim, Overlay::complete(2),
                      std::make_unique<FixedDelay>(10_ms),
                      std::make_unique<NoLoss>(), Rng(1));
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 100_ms;
  transport.set_wake_schedule(1, dc);

  std::vector<SimTime> deliveries;
  transport.register_handler(0, [](const Message&) {});
  transport.register_handler(
      1, [&](const Message& msg) { deliveries.push_back(msg.delivered_at); });

  auto send = [&](std::int64_t at_ms) {
    sim.scheduler().schedule_at(t(at_ms), [&transport] {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.kind = MessageKind::kComputation;
      ComputationPayload payload;
      payload.stamps.causal_vector = clocks::VectorStamp(2);
      m.payload = payload;
      transport.unicast(std::move(m));
    });
  };
  send(20);    // arrives at 30 ms — awake, immediate
  send(200);   // arrives at 210 ms — asleep, waits until 1000 ms
  send(1050);  // arrives at 1060 ms — awake again
  sim.run();

  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], t(30));
  EXPECT_EQ(deliveries[1], t(1000));
  EXPECT_EQ(deliveries[2], t(1060));
}

TEST(DutyCycleTransportTest, ClearRestoresAlwaysOn) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + 100_s;
  sim::Simulation sim(cfg);
  Transport transport(sim, Overlay::complete(2),
                      std::make_unique<FixedDelay>(10_ms),
                      std::make_unique<NoLoss>(), Rng(2));
  DutyCycle dc;
  dc.period = 1000_ms;
  dc.window = 10_ms;
  transport.set_wake_schedule(1, dc);
  transport.clear_wake_schedule(1);

  SimTime delivered;
  transport.register_handler(0, [](const Message&) {});
  transport.register_handler(
      1, [&](const Message& msg) { delivered = msg.delivered_at; });
  sim.scheduler().schedule_at(t(500), [&transport] {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = MessageKind::kComputation;
    ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(2);
    m.payload = payload;
    transport.unicast(std::move(m));
  });
  sim.run();
  EXPECT_EQ(delivered, t(510));
}

TEST(DutyCycleTransportTest, InvalidScheduleRejected) {
  sim::SimConfig cfg;
  sim::Simulation sim(cfg);
  Transport transport(sim, Overlay::complete(2),
                      std::make_unique<FixedDelay>(10_ms),
                      std::make_unique<NoLoss>(), Rng(3));
  DutyCycle bad;
  bad.window = bad.period * 2;
  EXPECT_THROW(transport.set_wake_schedule(1, bad), InvariantError);
  EXPECT_THROW(transport.set_wake_schedule(9, DutyCycle{}), InvariantError);
}

}  // namespace
}  // namespace psn::net
