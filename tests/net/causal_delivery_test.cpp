#include "net/causal_delivery.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace psn::net {
namespace {

using CausalMessage = CausalBroadcaster::CausalMessage;

/// Builds "m3"-style labels via += (GCC 12's -Wrestrict false-fires on
/// `"m" + <rvalue string>` under -O3, PR 105651).
std::string tag(const char* prefix, int k) {
  std::string out(prefix);
  out += std::to_string(k);
  return out;
}

/// Harness: n broadcasters whose transmissions are collected; the test
/// decides arrival orders per receiver.
struct Mesh {
  explicit Mesh(std::size_t n) {
    for (ProcessId p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<CausalBroadcaster>(
          p, n,
          [this](const CausalMessage& m) { transmitted.push_back(m); },
          [this, p](const CausalMessage& m) {
            delivered[p].push_back(m.payload);
          }));
    }
  }
  std::vector<std::unique_ptr<CausalBroadcaster>> nodes;
  std::vector<CausalMessage> transmitted;
  std::map<ProcessId, std::vector<std::string>> delivered;
};

TEST(CausalDeliveryTest, InOrderPassthrough) {
  Mesh mesh(2);
  mesh.nodes[0]->broadcast("a");
  mesh.nodes[0]->broadcast("b");
  ASSERT_EQ(mesh.transmitted.size(), 2u);
  mesh.nodes[1]->on_receive(mesh.transmitted[0]);
  mesh.nodes[1]->on_receive(mesh.transmitted[1]);
  EXPECT_EQ(mesh.delivered[1], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(mesh.delivered[0], (std::vector<std::string>{"a", "b"}));  // local
}

TEST(CausalDeliveryTest, FifoViolationBuffered) {
  Mesh mesh(2);
  mesh.nodes[0]->broadcast("first");
  mesh.nodes[0]->broadcast("second");
  // Network reorders the sender's own stream.
  mesh.nodes[1]->on_receive(mesh.transmitted[1]);
  EXPECT_TRUE(mesh.delivered[1].empty());
  EXPECT_EQ(mesh.nodes[1]->buffered(), 1u);
  mesh.nodes[1]->on_receive(mesh.transmitted[0]);
  EXPECT_EQ(mesh.delivered[1], (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(mesh.nodes[1]->buffered(), 0u);
}

TEST(CausalDeliveryTest, CrossSenderCausalityRespected) {
  // P0 broadcasts "cause"; P1 delivers it and broadcasts "effect". P2 gets
  // "effect" first — it must be held until "cause" arrives.
  Mesh mesh(3);
  mesh.nodes[0]->broadcast("cause");
  const CausalMessage cause = mesh.transmitted[0];
  mesh.nodes[1]->on_receive(cause);
  mesh.nodes[1]->broadcast("effect");
  const CausalMessage effect = mesh.transmitted[1];

  mesh.nodes[2]->on_receive(effect);
  EXPECT_TRUE(mesh.delivered[2].empty()) << "effect delivered before cause";
  mesh.nodes[2]->on_receive(cause);
  EXPECT_EQ(mesh.delivered[2],
            (std::vector<std::string>{"cause", "effect"}));
}

TEST(CausalDeliveryTest, ConcurrentBroadcastsDeliverInAnyArrivalOrder) {
  Mesh mesh(3);
  mesh.nodes[0]->broadcast("x");
  mesh.nodes[1]->broadcast("y");  // concurrent with x
  const CausalMessage x = mesh.transmitted[0];
  const CausalMessage y = mesh.transmitted[1];
  mesh.nodes[2]->on_receive(y);
  EXPECT_EQ(mesh.delivered[2], (std::vector<std::string>{"y"}));
  mesh.nodes[2]->on_receive(x);
  EXPECT_EQ(mesh.delivered[2], (std::vector<std::string>{"y", "x"}));
}

TEST(CausalDeliveryTest, DuplicatesDropped) {
  Mesh mesh(2);
  mesh.nodes[0]->broadcast("once");
  mesh.nodes[1]->on_receive(mesh.transmitted[0]);
  mesh.nodes[1]->on_receive(mesh.transmitted[0]);
  EXPECT_EQ(mesh.delivered[1], (std::vector<std::string>{"once"}));
}

TEST(CausalDeliveryTest, SelfCopyIgnored) {
  Mesh mesh(2);
  mesh.nodes[0]->broadcast("mine");
  mesh.nodes[0]->on_receive(mesh.transmitted[0]);  // echo from fan-out
  EXPECT_EQ(mesh.delivered[0], (std::vector<std::string>{"mine"}));
}

TEST(CausalDeliveryTest, LongDependencyChainDrains) {
  // A chain a0→a1→…→a9 (each broadcast after delivering the previous, on
  // alternating processes) delivered to a third process in reverse order —
  // one final arrival must drain the whole buffer in causal order.
  Mesh mesh(3);
  std::vector<CausalMessage> chain;
  for (int k = 0; k < 10; ++k) {
    const ProcessId sender = k % 2 == 0 ? 0 : 1;
    const ProcessId other = 1 - sender;
    mesh.nodes[sender]->broadcast(tag("m", k));
    chain.push_back(mesh.transmitted.back());
    mesh.nodes[other]->on_receive(chain.back());
  }
  for (int k = 9; k >= 1; --k) {
    mesh.nodes[2]->on_receive(chain[static_cast<std::size_t>(k)]);
  }
  EXPECT_TRUE(mesh.delivered[2].empty());
  EXPECT_EQ(mesh.nodes[2]->buffered(), 9u);
  mesh.nodes[2]->on_receive(chain[0]);
  ASSERT_EQ(mesh.delivered[2].size(), 10u);
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(mesh.delivered[2][static_cast<std::size_t>(k)], tag("m", k));
  }
}

class CausalDeliveryPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalDeliveryPropertyTest, RandomShufflesPreserveCausalOrder) {
  // Random broadcast pattern over 4 processes; every receiver gets every
  // message in an independent random order. Delivery at each receiver must
  // respect the causal order derived from the stamps.
  Rng rng(GetParam());
  constexpr std::size_t kN = 4;
  Mesh mesh(kN);

  // Build a random causally-rich history among processes 0..kN-2 (process
  // kN-1 stays silent — it will be the observer): each step, a random
  // process receives everything transmitted so far with probability 1/2
  // (in order), then broadcasts.
  for (int step = 0; step < 20; ++step) {
    const auto p = static_cast<ProcessId>(rng.uniform_int(0, kN - 2));
    if (rng.bernoulli(0.5)) {
      for (const auto& m : mesh.transmitted) {
        mesh.nodes[p]->on_receive(m);
      }
    }
    mesh.nodes[p]->broadcast(tag("s", step));
  }

  // A fresh observer (the silent process kN-1) receives all messages in a
  // random shuffle.
  std::vector<CausalMessage> delivered_at_observer;
  CausalBroadcaster observer(
      kN - 1, kN, [](const CausalMessage&) {},
      [&](const CausalMessage& m) { delivered_at_observer.push_back(m); });
  std::vector<CausalMessage> shuffle = mesh.transmitted;
  for (std::size_t i = shuffle.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(shuffle[i - 1], shuffle[j]);
  }
  for (const auto& m : shuffle) observer.on_receive(m);

  // Every message delivered (none originate at the observer), in causal
  // order.
  EXPECT_EQ(delivered_at_observer.size(), mesh.transmitted.size());
  EXPECT_EQ(observer.buffered(), 0u);
  for (std::size_t a = 0; a < delivered_at_observer.size(); ++a) {
    for (std::size_t b = a + 1; b < delivered_at_observer.size(); ++b) {
      // If b's stamp causally precedes a's, the order is violated.
      const auto& sa = delivered_at_observer[a].stamp;
      const auto& sb = delivered_at_observer[b].stamp;
      EXPECT_FALSE(clocks::happens_before(sb, sa))
          << "delivery violated causal order at positions " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalDeliveryPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(FifoTransportTest, FifoClampPreventsOvertaking) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + Duration::seconds(100);
  sim::Simulation sim(cfg);
  Transport transport(sim, Overlay::complete(2),
                      std::make_unique<UniformBoundedDelay>(
                          Duration::millis(1), Duration::millis(100)),
                      std::make_unique<NoLoss>(), Rng(3));
  transport.set_fifo_channels(true);
  std::vector<std::string> arrived;
  transport.register_handler(0, [](const Message&) {});
  transport.register_handler(1, [&](const Message& msg) {
    arrived.push_back(msg.computation().tag);
  });
  for (int k = 0; k < 50; ++k) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = MessageKind::kComputation;
    ComputationPayload payload;
    payload.stamps.causal_vector = clocks::VectorStamp(2);
    payload.tag = std::to_string(k);
    m.payload = payload;
    transport.unicast(std::move(m));
  }
  sim.scheduler().run();
  ASSERT_EQ(arrived.size(), 50u);
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(arrived[static_cast<std::size_t>(k)], std::to_string(k));
  }
}

}  // namespace
}  // namespace psn::net
