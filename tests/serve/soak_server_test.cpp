// Soak-server tests: the JSONL wire parser must round-trip the batch
// exporter's output exactly and reject malformed input with pointed
// diagnostics; the ingest loop must verify a real run's trace clean, stop
// on out-of-order input in strict mode, and keep going in lenient mode.
// The session core additionally pins the serve-layer bugfixes: locale-safe
// number parsing, no duplicate metrics line at metrics_every boundaries,
// write-failure teardown, and the strict-vs-lenient exit-code precedence.

#include "serve/soak_server.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <ostream>
#include <sstream>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "net/message.hpp"
#include "serve/session.hpp"
#include "serve/trace_feed.hpp"

namespace psn::serve {
namespace {

using namespace psn::time_literals;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    count++;
  }
  return count;
}

/// Collects everything a Session writes; can be told to start failing, the
/// way a closed downstream pipe does.
struct CollectingWriter {
  std::string text;
  bool fail = false;

  Session::Writer fn() {
    return [this](std::string_view chunk) {
      if (fail) return false;
      text.append(chunk);
      return true;
    };
  }
};

TEST(TraceFeedTest, RoundTripsTheBatchExporterByteForByte) {
  sim::TraceRecord r;
  r.at = SimTime::zero() + Duration::millis(1250);
  r.kind = sim::TraceKind::kSend;
  r.pid = 3;
  r.peer = 0;
  r.message_kind = static_cast<int>(net::MessageKind::kStrobe);
  r.bytes = 57;
  r.seq = 91;
  r.note = "odd \"note\"\twith\nescapes";

  const std::string line = trace_line(r);
  EXPECT_EQ(line + "\n", analysis::trace_jsonl({r}));

  const ParsedRecord parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.record.at, r.at);
  EXPECT_EQ(parsed.record.kind, r.kind);
  EXPECT_EQ(parsed.record.pid, r.pid);
  EXPECT_EQ(parsed.record.peer, r.peer);
  EXPECT_EQ(parsed.record.message_kind, r.message_kind);
  EXPECT_EQ(parsed.record.bytes, r.bytes);
  EXPECT_EQ(parsed.record.seq, r.seq);
  EXPECT_EQ(parsed.record.note, r.note);
  // Re-serializing the parse must reproduce the wire line exactly.
  EXPECT_EQ(trace_line(parsed.record), line);
}

TEST(TraceFeedTest, ParsesMinimalRecordAndAnyKeyOrder) {
  const ParsedRecord minimal =
      parse_trace_line("{\"t\":0.5,\"kind\":\"sense\",\"pid\":1}");
  ASSERT_TRUE(minimal.ok()) << minimal.error;
  EXPECT_EQ(minimal.record.kind, sim::TraceKind::kSense);
  EXPECT_EQ(minimal.record.peer, kNoProcess);
  EXPECT_EQ(minimal.record.message_kind, -1);

  const ParsedRecord reordered = parse_trace_line(
      "{\"seq\":9,\"pid\":2,\"kind\":\"deliver\",\"msg\":\"strobe\","
      "\"t\":1.0}");
  ASSERT_TRUE(reordered.ok()) << reordered.error;
  EXPECT_EQ(reordered.record.seq, 9u);
  EXPECT_EQ(reordered.record.message_kind,
            static_cast<int>(net::MessageKind::kStrobe));
}

TEST(TraceFeedTest, RejectsGarbageWithSpecificDiagnostics) {
  const struct {
    const char* line;
    const char* why;
  } cases[] = {
      {"", "expected '{'"},
      {"not json at all", "expected '{'"},
      {"{\"t\":1.0,\"pid\":1}", "missing required key \"kind\""},
      {"{\"kind\":\"sense\",\"pid\":1}", "missing required key \"t\""},
      {"{\"t\":1.0,\"kind\":\"sense\"}", "missing required key \"pid\""},
      {"{\"t\":-2,\"kind\":\"sense\",\"pid\":1}", "non-negative"},
      {"{\"t\":1.0,\"kind\":\"warp\",\"pid\":1}", "unknown trace kind"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"zap\":3}", "unknown key"},
      {"{\"t\":1.0,\"t\":2.0,\"kind\":\"sense\",\"pid\":1}", "duplicate"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":1}trailing", "trailing"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":\"x\"}", "process id"},
      {"{\"t\":1.0,\"kind\":\"send\",\"pid\":1,\"msg\":\"carrier\"}",
       "unknown message kind"},
  };
  for (const auto& c : cases) {
    const ParsedRecord parsed = parse_trace_line(c.line);
    EXPECT_FALSE(parsed.ok()) << c.line;
    EXPECT_NE(parsed.error.find(c.why), std::string::npos)
        << "line: " << c.line << " error: " << parsed.error;
  }
}

TEST(SoakServerTest, VerifiesARealRunTraceClean) {
  analysis::OccupancyConfig cfg;
  cfg.doors = 3;
  cfg.movement_rate = 10.0;
  cfg.horizon = 20_s;
  cfg.trace_capacity = std::size_t{1} << 18;
  const analysis::OccupancyRunResult run =
      analysis::run_occupancy_experiment(cfg);
  ASSERT_EQ(run.trace_evicted, 0u);
  ASSERT_FALSE(run.trace.empty());

  std::istringstream in(analysis::trace_jsonl(run.trace));
  std::ostringstream out;
  SoakServerConfig server_cfg;
  server_cfg.num_processes = cfg.doors + 1;
  server_cfg.metrics_every = 1000;
  SoakServer server(server_cfg, out);
  const SoakReport report = server.run(in);

  EXPECT_EQ(report.exit_code, 0);
  EXPECT_EQ(report.records_fed, run.trace.size());
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.malformed_lines, 0u);
  EXPECT_EQ(report.out_of_order_lines, 0u);
  EXPECT_GT(report.detect_records, 0u);
  EXPECT_GT(report.peak_pending_sends, 0u);
  // Output carries periodic metrics snapshots and a final verdict line.
  const std::string text = out.str();
  EXPECT_NE(text.find("\"event\":\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"detect\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"eof\",\"verdict\":\"clean\""),
            std::string::npos);
}

TEST(SoakServerTest, StrictModeStopsAtOutOfOrderInput) {
  std::istringstream in(
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n");
  std::ostringstream out;
  SoakServer server(SoakServerConfig{}, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_EQ(report.out_of_order_lines, 1u);
  EXPECT_EQ(report.records_fed, 1u);  // stopped before the third line
  EXPECT_NE(out.str().find("\"event\":\"reject\""), std::string::npos);
  EXPECT_NE(out.str().find("rejected-input"), std::string::npos);
}

TEST(SoakServerTest, StrictModeStopsAtGarbage) {
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "garbage line\n"
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n");
  std::ostringstream out;
  SoakServer server(SoakServerConfig{}, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_EQ(report.malformed_lines, 1u);
  EXPECT_EQ(report.records_fed, 1u);
}

TEST(SoakServerTest, LenientModeSkipsBadLinesAndFinishes) {
  std::istringstream in(
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "garbage line\n"
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n");
  std::ostringstream out;
  SoakServerConfig cfg;
  cfg.lenient = true;
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 0);
  EXPECT_EQ(report.malformed_lines, 1u);
  EXPECT_EQ(report.out_of_order_lines, 1u);
  EXPECT_EQ(report.records_fed, 2u);
}

// Regression for the locale bug: strtod/strtoull honor LC_NUMERIC, so a
// comma-decimal locale silently truncated every fractional timestamp at the
// '.'. The parser and the exporter now use from_chars/to_chars, which are
// locale-independent by specification; this round-trips a trace with
// LC_NUMERIC forced to a comma-decimal locale when the host has one.
TEST(TraceFeedTest, RoundTripsUnderACommaDecimalLocale) {
  const char* comma_locales[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                 "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
  const char* active = nullptr;
  for (const char* name : comma_locales) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      active = name;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }

  sim::TraceRecord r;
  r.at = SimTime::zero() + Duration::millis(1250);
  r.kind = sim::TraceKind::kSense;
  r.pid = 2;
  r.seq = 7;
  const std::string line = trace_line(r);
  // The exporter must keep '.' regardless of locale...
  EXPECT_NE(line.find("\"t\":1.250000000"), std::string::npos) << line;
  // ...and the parser must read the full fractional value back.
  const ParsedRecord parsed = parse_trace_line(line);
  std::setlocale(LC_NUMERIC, "C");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.record.at, r.at);
  EXPECT_EQ(trace_line(parsed.record), line);
}

// Regression: a stream whose length is an exact multiple of metrics_every
// used to get the boundary snapshot twice — once inside the loop and once
// unconditionally before `eof`.
TEST(SoakServerTest, NoDuplicateMetricsLineAtExactMetricsEveryBoundary) {
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n"
      "{\"t\":4.0,\"kind\":\"sense\",\"pid\":1,\"seq\":4}\n");
  std::ostringstream out;
  SoakServerConfig cfg;
  cfg.metrics_every = 2;
  cfg.send_retention = Duration::seconds(100);
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.records_fed, 4u);
  // Snapshots at records 2 and 4; the one at 4 doubles as the EOF snapshot.
  EXPECT_EQ(count_occurrences(out.str(), "\"event\":\"metrics\""), 2u);
}

TEST(SoakServerTest, MetricsStillEmittedAtEofOffBoundaryAndWhenDisabled) {
  const std::string three_records =
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n";
  {
    std::istringstream in(three_records);
    std::ostringstream out;
    SoakServerConfig cfg;
    cfg.metrics_every = 2;
    SoakServer server(cfg, out);
    server.run(in);
    // One at record 2, one final snapshot at EOF (record 3).
    EXPECT_EQ(count_occurrences(out.str(), "\"event\":\"metrics\""), 2u);
  }
  {
    std::istringstream in(three_records);
    std::ostringstream out;
    SoakServerConfig cfg;
    cfg.metrics_every = 0;  // EOF-only mode keeps its single snapshot
    SoakServer server(cfg, out);
    server.run(in);
    EXPECT_EQ(count_occurrences(out.str(), "\"event\":\"metrics\""), 1u);
  }
}

// The serve layer's SIGPIPE policy: when the downstream consumer goes away,
// the write failure tears down the session — the loop stops consuming input
// and the process-level exit code still reflects what was seen.
TEST(SessionTest, DownstreamWriteFailureTearsDownTheSession) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.soak.metrics_every = 1;  // every record forces a write
  Session session(cfg, writer.fn());
  session.feed_line("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}");
  EXPECT_FALSE(session.stopped());
  writer.fail = true;  // the reader closed its end
  session.feed_line("{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}");
  EXPECT_TRUE(session.stopped());
  EXPECT_TRUE(session.write_failed());
  const SoakReport& report = session.finish();
  EXPECT_EQ(report.records_fed, 2u);
  EXPECT_EQ(report.exit_code, 0);  // write loss is not an input rejection
}

TEST(SoakServerTest, SurvivesAnOutputStreamThatStopsAccepting) {
  // An ostream over a full/closed sink: fails after the first flush of
  // data, like stdout does once the consumer is gone and SIGPIPE is
  // ignored. run() must return (not crash, not loop) with the report.
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n");
  std::ostringstream out;
  out.setstate(std::ios::badbit);  // every write fails
  SoakServerConfig cfg;
  cfg.metrics_every = 1;
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_LE(report.records_fed, 2u);
  EXPECT_EQ(report.exit_code, 0);
}

// Exit-code precedence, strict mode: input rejection (3) beats violations
// seen earlier in the stream (1).
TEST(SessionTest, StrictRejectionOutranksViolationsInExitCode) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.soak.validity_horizon.lifetime = Duration::seconds(1);
  Session session(cfg, writer.fn());
  // A stale delivery: violation (would exit 1 on its own)...
  session.feed_line("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}");
  session.feed_line(
      "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}");
  // ...then garbage: strict rejection wins.
  session.feed_line("not json");
  const SoakReport& report = session.finish();
  EXPECT_GT(report.violations, 0u);
  EXPECT_EQ(report.malformed_lines, 1u);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_NE(writer.text.find("\"verdict\":\"rejected-input\""),
            std::string::npos);
}

// Exit-code precedence, lenient mode: rejects are counted but only
// violations drive the exit code.
TEST(SessionTest, LenientRejectsDoNotMaskViolationExitCode) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.soak.lenient = true;
  cfg.soak.validity_horizon.lifetime = Duration::seconds(1);
  Session session(cfg, writer.fn());
  session.feed_line("garbage");
  session.feed_line("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}");
  session.feed_line(
      "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}");
  session.feed_line("more garbage");
  const SoakReport& report = session.finish();
  EXPECT_EQ(report.malformed_lines, 2u);
  EXPECT_GT(report.violations, 0u);
  EXPECT_EQ(report.exit_code, 1);
}

TEST(SessionTest, LenientCleanStreamWithRejectsExitsZero) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.soak.lenient = true;
  Session session(cfg, writer.fn());
  session.feed_line("garbage");
  session.feed_line("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}");
  const SoakReport& report = session.finish();
  EXPECT_EQ(report.exit_code, 0);
}

// Socket-mode line reassembly: bytes arrive in arbitrary chunks; the
// session must produce exactly what per-line feeding produces.
TEST(SessionTest, ChunkedBytesMatchLineFeeding) {
  const std::string wire =
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":2.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}";  // unterminated

  CollectingWriter by_lines;
  Session line_session(SessionConfig{}, by_lines.fn());
  std::istringstream in(wire);
  std::string line;
  while (std::getline(in, line)) line_session.feed_line(line);
  const SoakReport line_report = line_session.finish();

  CollectingWriter by_chunks;
  Session chunk_session(SessionConfig{}, by_chunks.fn());
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    chunk_session.on_data(std::string_view(wire).substr(i, 7));
  }
  const SoakReport chunk_report = chunk_session.finish();

  EXPECT_EQ(by_chunks.text, by_lines.text);
  EXPECT_EQ(chunk_report.records_fed, line_report.records_fed);
  EXPECT_EQ(chunk_report.lines_read, line_report.lines_read);
}

// The slow-producer policy: a line that outgrows the reassembly cap is
// rejected — strict mode stops the stream (exit 3), lenient mode drops to
// the next newline and keeps going.
TEST(SessionTest, OverlongLineStrictlyRejects) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.max_line_bytes = 32;
  Session session(cfg, writer.fn());
  session.on_data(std::string(100, 'x'));  // no newline in sight
  EXPECT_TRUE(session.stopped());
  const SoakReport& report = session.finish();
  EXPECT_EQ(report.overlong_lines, 1u);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_NE(writer.text.find("exceeds --max-buffer"), std::string::npos);
}

TEST(SessionTest, OverlongLineLenientDropsAndCounts) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.max_line_bytes = 64;
  cfg.soak.lenient = true;
  Session session(cfg, writer.fn());
  session.on_data(std::string(100, 'x'));
  session.on_data("xxx\n");  // the tail of the dropped line
  session.on_data("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n");
  const SoakReport& report = session.finish();
  EXPECT_EQ(report.overlong_lines, 1u);
  EXPECT_EQ(report.records_fed, 1u);
  EXPECT_EQ(report.exit_code, 0);
}

// Socket mode stamps the stream id into `metrics` and `eof` events only;
// per-record events stay byte-identical to stdin mode.
TEST(SessionTest, StreamIdAppearsOnMetricsAndEofEventsOnly) {
  CollectingWriter writer;
  SessionConfig cfg;
  cfg.stream_id = 42;
  Session session(cfg, writer.fn());
  session.feed_line("{\"t\":1.0,\"kind\":\"detect\",\"pid\":0}");
  session.finish();
  EXPECT_NE(writer.text.find("\"event\":\"metrics\",\"stream\":42"),
            std::string::npos);
  EXPECT_NE(writer.text.find("\"event\":\"eof\",\"stream\":42"),
            std::string::npos);
  EXPECT_NE(writer.text.find("{\"event\":\"detect\",\"t\":"),
            std::string::npos);
  EXPECT_EQ(writer.text.find("\"event\":\"detect\",\"stream\""),
            std::string::npos);
}

TEST(SoakServerTest, FlagsStaleDeliveriesUnderAValidityHorizon) {
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}\n");
  std::ostringstream out;
  SoakServerConfig cfg;
  cfg.validity_horizon.lifetime = Duration::seconds(1);
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 1);
  EXPECT_EQ(report.stale_observations, 1u);
  EXPECT_NE(out.str().find("stale-observation"), std::string::npos);
}

}  // namespace
}  // namespace psn::serve
