// Soak-server tests: the JSONL wire parser must round-trip the batch
// exporter's output exactly and reject malformed input with pointed
// diagnostics; the ingest loop must verify a real run's trace clean, stop
// on out-of-order input in strict mode, and keep going in lenient mode.

#include "serve/soak_server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "net/message.hpp"
#include "serve/trace_feed.hpp"

namespace psn::serve {
namespace {

using namespace psn::time_literals;

TEST(TraceFeedTest, RoundTripsTheBatchExporterByteForByte) {
  sim::TraceRecord r;
  r.at = SimTime::zero() + Duration::millis(1250);
  r.kind = sim::TraceKind::kSend;
  r.pid = 3;
  r.peer = 0;
  r.message_kind = static_cast<int>(net::MessageKind::kStrobe);
  r.bytes = 57;
  r.seq = 91;
  r.note = "odd \"note\"\twith\nescapes";

  const std::string line = trace_line(r);
  EXPECT_EQ(line + "\n", analysis::trace_jsonl({r}));

  const ParsedRecord parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.record.at, r.at);
  EXPECT_EQ(parsed.record.kind, r.kind);
  EXPECT_EQ(parsed.record.pid, r.pid);
  EXPECT_EQ(parsed.record.peer, r.peer);
  EXPECT_EQ(parsed.record.message_kind, r.message_kind);
  EXPECT_EQ(parsed.record.bytes, r.bytes);
  EXPECT_EQ(parsed.record.seq, r.seq);
  EXPECT_EQ(parsed.record.note, r.note);
  // Re-serializing the parse must reproduce the wire line exactly.
  EXPECT_EQ(trace_line(parsed.record), line);
}

TEST(TraceFeedTest, ParsesMinimalRecordAndAnyKeyOrder) {
  const ParsedRecord minimal =
      parse_trace_line("{\"t\":0.5,\"kind\":\"sense\",\"pid\":1}");
  ASSERT_TRUE(minimal.ok()) << minimal.error;
  EXPECT_EQ(minimal.record.kind, sim::TraceKind::kSense);
  EXPECT_EQ(minimal.record.peer, kNoProcess);
  EXPECT_EQ(minimal.record.message_kind, -1);

  const ParsedRecord reordered = parse_trace_line(
      "{\"seq\":9,\"pid\":2,\"kind\":\"deliver\",\"msg\":\"strobe\","
      "\"t\":1.0}");
  ASSERT_TRUE(reordered.ok()) << reordered.error;
  EXPECT_EQ(reordered.record.seq, 9u);
  EXPECT_EQ(reordered.record.message_kind,
            static_cast<int>(net::MessageKind::kStrobe));
}

TEST(TraceFeedTest, RejectsGarbageWithSpecificDiagnostics) {
  const struct {
    const char* line;
    const char* why;
  } cases[] = {
      {"", "expected '{'"},
      {"not json at all", "expected '{'"},
      {"{\"t\":1.0,\"pid\":1}", "missing required key \"kind\""},
      {"{\"kind\":\"sense\",\"pid\":1}", "missing required key \"t\""},
      {"{\"t\":1.0,\"kind\":\"sense\"}", "missing required key \"pid\""},
      {"{\"t\":-2,\"kind\":\"sense\",\"pid\":1}", "non-negative"},
      {"{\"t\":1.0,\"kind\":\"warp\",\"pid\":1}", "unknown trace kind"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"zap\":3}", "unknown key"},
      {"{\"t\":1.0,\"t\":2.0,\"kind\":\"sense\",\"pid\":1}", "duplicate"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":1}trailing", "trailing"},
      {"{\"t\":1.0,\"kind\":\"sense\",\"pid\":\"x\"}", "process id"},
      {"{\"t\":1.0,\"kind\":\"send\",\"pid\":1,\"msg\":\"carrier\"}",
       "unknown message kind"},
  };
  for (const auto& c : cases) {
    const ParsedRecord parsed = parse_trace_line(c.line);
    EXPECT_FALSE(parsed.ok()) << c.line;
    EXPECT_NE(parsed.error.find(c.why), std::string::npos)
        << "line: " << c.line << " error: " << parsed.error;
  }
}

TEST(SoakServerTest, VerifiesARealRunTraceClean) {
  analysis::OccupancyConfig cfg;
  cfg.doors = 3;
  cfg.movement_rate = 10.0;
  cfg.horizon = 20_s;
  cfg.trace_capacity = std::size_t{1} << 18;
  const analysis::OccupancyRunResult run =
      analysis::run_occupancy_experiment(cfg);
  ASSERT_EQ(run.trace_evicted, 0u);
  ASSERT_FALSE(run.trace.empty());

  std::istringstream in(analysis::trace_jsonl(run.trace));
  std::ostringstream out;
  SoakServerConfig server_cfg;
  server_cfg.num_processes = cfg.doors + 1;
  server_cfg.metrics_every = 1000;
  SoakServer server(server_cfg, out);
  const SoakReport report = server.run(in);

  EXPECT_EQ(report.exit_code, 0);
  EXPECT_EQ(report.records_fed, run.trace.size());
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.malformed_lines, 0u);
  EXPECT_EQ(report.out_of_order_lines, 0u);
  EXPECT_GT(report.detect_records, 0u);
  EXPECT_GT(report.peak_pending_sends, 0u);
  // Output carries periodic metrics snapshots and a final verdict line.
  const std::string text = out.str();
  EXPECT_NE(text.find("\"event\":\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"detect\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"eof\",\"verdict\":\"clean\""),
            std::string::npos);
}

TEST(SoakServerTest, StrictModeStopsAtOutOfOrderInput) {
  std::istringstream in(
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n");
  std::ostringstream out;
  SoakServer server(SoakServerConfig{}, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_EQ(report.out_of_order_lines, 1u);
  EXPECT_EQ(report.records_fed, 1u);  // stopped before the third line
  EXPECT_NE(out.str().find("\"event\":\"reject\""), std::string::npos);
  EXPECT_NE(out.str().find("rejected-input"), std::string::npos);
}

TEST(SoakServerTest, StrictModeStopsAtGarbage) {
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "garbage line\n"
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n");
  std::ostringstream out;
  SoakServer server(SoakServerConfig{}, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 3);
  EXPECT_EQ(report.malformed_lines, 1u);
  EXPECT_EQ(report.records_fed, 1u);
}

TEST(SoakServerTest, LenientModeSkipsBadLinesAndFinishes) {
  std::istringstream in(
      "{\"t\":2.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "garbage line\n"
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":2}\n"
      "{\"t\":3.0,\"kind\":\"sense\",\"pid\":1,\"seq\":3}\n");
  std::ostringstream out;
  SoakServerConfig cfg;
  cfg.lenient = true;
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 0);
  EXPECT_EQ(report.malformed_lines, 1u);
  EXPECT_EQ(report.out_of_order_lines, 1u);
  EXPECT_EQ(report.records_fed, 2u);
}

TEST(SoakServerTest, FlagsStaleDeliveriesUnderAValidityHorizon) {
  std::istringstream in(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}\n");
  std::ostringstream out;
  SoakServerConfig cfg;
  cfg.validity_horizon.lifetime = Duration::seconds(1);
  SoakServer server(cfg, out);
  const SoakReport report = server.run(in);
  EXPECT_EQ(report.exit_code, 1);
  EXPECT_EQ(report.stale_observations, 1u);
  EXPECT_NE(out.str().find("stale-observation"), std::string::npos);
}

}  // namespace
}  // namespace psn::serve
