// Multi-stream socket listener tests (DESIGN.md §12). The load-bearing
// property is equivalence: N concurrent socket clients must each receive
// byte-identical output to N sequential stdin `serve` runs over the same
// traces (modulo the `"stream":<id>` field on metrics/eof events). The rest
// pins the protocol edges: --max-streams over-limit rejection, surviving an
// abrupt client disconnect, graceful drain on stop, exit-code aggregation
// precedence, per-stream metric labels, and the AF_UNIX listen path.
//
// Clients always run a concurrent reader (a thread, or interleaved
// blocking reads on small payloads): a client that only sends while the
// server blocks sending back to it is a classic two-way-pipe deadlock.

#include "serve/listener.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/export.hpp"
#include "common/error.hpp"
#include "common/fd.hpp"
#include "serve/soak_server.hpp"

namespace psn::serve {
namespace {

using namespace psn::time_literals;

/// Blocking test client over the verification socket. Reads and writes may
/// run from different threads (reader-thread pattern); `received_` is only
/// touched by whoever calls the read methods.
class Client {
 public:
  static Client connect_tcp(std::uint16_t port) {
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd && ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) != 0) {
      fd.reset();
    }
    return Client(std::move(fd));
  }

  static Client connect_unix(const std::string& path) {
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (fd && ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) != 0) {
      fd.reset();
    }
    return Client(std::move(fd));
  }

  bool ok() const { return static_cast<bool>(fd_); }

  /// MSG_NOSIGNAL: a torn-down session closes our socket and the test
  /// process must see a failed send, not SIGPIPE.
  bool send_bytes(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_.get(), data.data() + off,
                               data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Half-close: tells the server this stream's input is complete while
  /// keeping the read side open for the final metrics + eof verdict.
  void half_close() { ::shutdown(fd_.get(), SHUT_WR); }

  /// Abrupt teardown: linger-zero close sends RST, the way a crashed
  /// producer vanishes.
  void abort_close() {
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    fd_.reset();
  }

  /// Blocks until the server closes the connection; returns all bytes ever
  /// received on this client.
  const std::string& read_to_eof() {
    while (read_some()) {
    }
    return received_;
  }

  /// Blocks until the accumulated bytes contain `needle` (or EOF). The
  /// deterministic sync point: send a detect record, wait for its echo, and
  /// the session is provably live and registered server-side.
  bool read_until(const std::string& needle) {
    while (received_.find(needle) == std::string::npos) {
      if (!read_some()) return false;
    }
    return true;
  }

  const std::string& received() const { return received_; }

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)) {}

  bool read_some() {
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      received_.append(buf, static_cast<std::size_t>(n));
      return true;
    }
  }

  UniqueFd fd_;
  std::string received_;
};

/// Runs a Listener on a background thread against an ephemeral port (or a
/// unix path); joins and surfaces the aggregate exit code on stop.
struct Harness {
  explicit Harness(ListenerConfig cfg) : listener(make(cfg), log) {
    listener.open();
    thread = std::thread([this] { exit_code = listener.run(); });
  }

  ~Harness() {
    if (thread.joinable()) {
      listener.request_stop();
      thread.join();
    }
  }

  int stop_and_join() {
    listener.request_stop();
    thread.join();
    return exit_code;
  }

  static ListenerConfig make(ListenerConfig cfg) {
    cfg.handle_signals = false;  // tests stop via request_stop()
    return cfg;
  }

  std::ostringstream log;
  Listener listener;
  std::thread thread;
  int exit_code = -1;
};

/// Removes every `,"stream":<digits>` occurrence — the one intentional
/// difference between socket-mode and stdin-mode output.
std::string strip_stream_field(const std::string& text) {
  const std::string key = ",\"stream\":";
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text.compare(i, key.size(), key) == 0) {
      std::size_t j = i + key.size();
      while (j < text.size() && text[j] >= '0' && text[j] <= '9') j++;
      i = j;
      continue;
    }
    out += text[i++];
  }
  return out;
}

std::string occupancy_trace(std::uint64_t seed) {
  analysis::OccupancyConfig cfg;
  cfg.doors = 2;
  cfg.movement_rate = 10.0;
  cfg.horizon = 10_s;
  cfg.seed = seed;
  cfg.trace_capacity = std::size_t{1} << 18;
  const analysis::OccupancyRunResult run =
      analysis::run_occupancy_experiment(cfg);
  EXPECT_EQ(run.trace_evicted, 0u);
  EXPECT_FALSE(run.trace.empty());
  return analysis::trace_jsonl(run.trace);
}

SoakServerConfig occupancy_session_config() {
  SoakServerConfig cfg;
  cfg.num_processes = 3;     // doors + P_0, matching occupancy_trace
  cfg.metrics_every = 1000;  // exercise periodic snapshots on the wire
  return cfg;
}

std::size_t count_lines(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    count++;
  }
  return count;
}

// The tentpole acceptance test: three concurrent socket clients, disjoint
// real traces, each client's bytes compared against a sequential stdin run.
TEST(ListenerTest, ConcurrentStreamsAreByteIdenticalToSequentialServes) {
  const std::uint64_t seeds[] = {11, 22, 33};
  std::vector<std::string> traces;
  std::vector<std::string> expected;
  for (const std::uint64_t seed : seeds) {
    traces.push_back(occupancy_trace(seed));
    std::istringstream in(traces.back());
    std::ostringstream out;
    SoakServer server(occupancy_session_config(), out);
    const SoakReport report = server.run(in);
    EXPECT_EQ(report.exit_code, 0) << "seed " << seed;
    expected.push_back(out.str());
  }

  ListenerConfig cfg;
  cfg.listen = "0";
  cfg.session = occupancy_session_config();
  Harness harness(cfg);

  std::vector<std::string> got(traces.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    clients.emplace_back([&, i] {
      Client client = Client::connect_tcp(harness.listener.port());
      ASSERT_TRUE(client.ok());
      // Reader runs concurrently with the sends (deadlock avoidance).
      std::thread reader([&client, &got, i] {
        got[i] = client.read_to_eof();
      });
      // Deliberately awkward chunking: split mid-line to force reassembly.
      const std::string& trace = traces[i];
      const std::size_t chunk = 4096 + 37 * i;
      for (std::size_t off = 0; off < trace.size(); off += chunk) {
        ASSERT_TRUE(client.send_bytes(
            std::string_view(trace).substr(off, chunk)));
      }
      client.half_close();
      reader.join();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(harness.stop_and_join(), 0);

  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(strip_stream_field(got[i]), expected[i]) << "client " << i;
    EXPECT_NE(got[i].find("\"event\":\"eof\""), std::string::npos);
  }

  // Server-wide snapshot carries every stream's labeled metrics, and the
  // labels add up to exactly the records each client fed.
  const MetricsSnapshot server = harness.listener.server_metrics();
  EXPECT_EQ(server.counters.at("serve.streams.accepted"), 3u);
  std::uint64_t labeled_total = 0;
  for (std::uint64_t id = 0; id < 3; ++id) {
    labeled_total +=
        server.counters.at(labeled_metric("serve.stream", id, "records"));
    EXPECT_EQ(
        server.counters.at(labeled_metric("serve.stream", id, "violations")),
        0u);
  }
  std::uint64_t fed_total = 0;
  for (const std::string& trace : traces) {
    fed_total += count_lines(trace, "\n");
  }
  EXPECT_EQ(labeled_total, fed_total);

  // Listener log: one accept and one close per stream, one shutdown line.
  const std::string log = harness.log.str();
  EXPECT_EQ(count_lines(log, "\"event\":\"accept\""), 3u);
  EXPECT_EQ(count_lines(log, "\"event\":\"close\""), 3u);
  EXPECT_EQ(count_lines(log, "\"event\":\"shutdown\""), 1u);
}

TEST(ListenerTest, OverLimitClientGetsOneRejectLineAndCleanClose) {
  ListenerConfig cfg;
  cfg.listen = "0";
  cfg.max_streams = 1;
  Harness harness(cfg);

  Client first = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(first.ok());
  // Sync: once the detect echo is back, the first session occupies the slot.
  ASSERT_TRUE(first.send_bytes("{\"t\":1.0,\"kind\":\"detect\",\"pid\":0}\n"));
  ASSERT_TRUE(first.read_until("\"event\":\"detect\""));

  Client second = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(second.ok());
  const std::string& rejected = second.read_to_eof();
  EXPECT_NE(rejected.find("--max-streams capacity (1)"), std::string::npos);
  EXPECT_EQ(rejected.find("\"event\":\"eof\""), std::string::npos);

  first.half_close();
  first.read_to_eof();
  EXPECT_NE(first.received().find("\"event\":\"eof\""), std::string::npos);
  EXPECT_EQ(harness.stop_and_join(), 0);  // flow control, not a failure
  EXPECT_EQ(harness.listener.streams_served(), 1u);
  EXPECT_NE(harness.log.str().find("\"reason\":\"max-streams\""),
            std::string::npos);
  EXPECT_EQ(
      harness.listener.server_metrics().counters.at(
          "serve.streams.over_limit"),
      1u);
}

TEST(ListenerTest, SurvivesAbruptClientDisconnectAndServesTheNext) {
  ListenerConfig cfg;
  cfg.listen = "0";
  Harness harness(cfg);

  {
    Client doomed = Client::connect_tcp(harness.listener.port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(
        doomed.send_bytes("{\"t\":1.0,\"kind\":\"detect\",\"pid\":0}\n"));
    ASSERT_TRUE(doomed.read_until("\"event\":\"detect\""));
    doomed.abort_close();  // RST, as if the producer crashed
  }

  Client next = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.send_bytes(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"));
  next.half_close();
  next.read_to_eof();
  EXPECT_NE(next.received().find("\"verdict\":\"clean\""), std::string::npos);
  EXPECT_EQ(harness.stop_and_join(), 0);
  EXPECT_EQ(harness.listener.streams_served(), 2u);
}

TEST(ListenerTest, GracefulStopDrainsLiveSessionsThroughEof) {
  ListenerConfig cfg;
  cfg.listen = "0";
  Harness harness(cfg);

  Client client = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send_bytes(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":1.5,\"kind\":\"detect\",\"pid\":0}\n"));
  // The session is mid-stream (no EOF from us) when the stop lands; the
  // drain must still deliver its final metrics and eof verdict.
  ASSERT_TRUE(client.read_until("\"event\":\"detect\""));
  EXPECT_EQ(harness.stop_and_join(), 0);
  client.read_to_eof();
  EXPECT_NE(client.received().find("\"event\":\"metrics\""),
            std::string::npos);
  EXPECT_NE(client.received().find("\"verdict\":\"clean\""),
            std::string::npos);
  EXPECT_NE(client.received().find("\"records\":2"), std::string::npos);
  EXPECT_NE(harness.log.str().find("\"event\":\"shutdown\",\"streams\":1"),
            std::string::npos);
}

TEST(ListenerTest, IdleStreamIsEvictedThroughTheNormalFinishPath) {
  ListenerConfig cfg;
  cfg.listen = "0";
  cfg.idle_timeout_ms = 150;
  Harness harness(cfg);

  Client client = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.send_bytes(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":1.5,\"kind\":\"detect\",\"pid\":0}\n"));
  // Now wedge: send nothing and never half-close. The listener must evict
  // the stream on its own, draining the session through finish() so we
  // still get the final metrics and eof verdict before the close.
  client.read_to_eof();
  EXPECT_NE(client.received().find("\"event\":\"metrics\""),
            std::string::npos);
  EXPECT_NE(client.received().find("\"verdict\":\"clean\""),
            std::string::npos);
  EXPECT_NE(client.received().find("\"records\":2"), std::string::npos);

  // The eviction is recorded: a lifecycle log line plus the per-stream
  // cause counter in the server-wide snapshot.
  EXPECT_NE(harness.log.str().find("\"event\":\"idle_evict\",\"stream\":0"),
            std::string::npos);
  EXPECT_EQ(harness.listener.server_metrics().counters.at(
                labeled_metric("serve.stream", 0, "idle_evicted")),
            1u);
  EXPECT_EQ(harness.stop_and_join(), 0);

  // A fresh client that completes before the deadline is not evicted.
  Harness harness2(cfg);
  Client quick = Client::connect_tcp(harness2.listener.port());
  ASSERT_TRUE(quick.ok());
  ASSERT_TRUE(
      quick.send_bytes("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"));
  quick.half_close();
  quick.read_to_eof();
  EXPECT_NE(quick.received().find("\"exit\":0"), std::string::npos);
  EXPECT_EQ(harness2.stop_and_join(), 0);
  EXPECT_EQ(harness2.log.str().find("\"event\":\"idle_evict\""),
            std::string::npos);
}

TEST(ListenerTest, AggregatesExitCodesWithRejectionOutrankingViolations) {
  ListenerConfig cfg;
  cfg.listen = "0";
  cfg.session.validity_horizon.lifetime = Duration::seconds(1);
  Harness harness(cfg);

  {  // clean stream → 0
    Client c = Client::connect_tcp(harness.listener.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(
        c.send_bytes("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"));
    c.half_close();
    c.read_to_eof();
    EXPECT_NE(c.received().find("\"exit\":0"), std::string::npos);
  }
  {  // stale delivery → violations, 1
    Client c = Client::connect_tcp(harness.listener.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send_bytes(
        "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
        "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
        "\"seq\":1}\n"));
    c.half_close();
    c.read_to_eof();
    EXPECT_NE(c.received().find("\"exit\":1"), std::string::npos);
  }
  {  // strict rejection → 3, and it must win the aggregate
    Client c = Client::connect_tcp(harness.listener.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send_bytes("definitely not a trace record\n"));
    c.half_close();
    c.read_to_eof();
    EXPECT_NE(c.received().find("\"verdict\":\"rejected-input\""),
              std::string::npos);
  }
  EXPECT_EQ(harness.stop_and_join(), 3);
  EXPECT_EQ(harness.listener.streams_served(), 3u);
}

TEST(ListenerTest, ViolationsAloneAggregateToExitOne) {
  ListenerConfig cfg;
  cfg.listen = "0";
  cfg.session.validity_horizon.lifetime = Duration::seconds(1);
  Harness harness(cfg);

  Client c = Client::connect_tcp(harness.listener.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_bytes(
      "{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"
      "{\"t\":5.0,\"kind\":\"deliver\",\"pid\":0,\"msg\":\"strobe\","
      "\"seq\":1}\n"));
  c.half_close();
  c.read_to_eof();
  EXPECT_EQ(harness.stop_and_join(), 1);
}

TEST(ListenerTest, ServesOverAUnixSocketPathAndUnlinksIt) {
  const std::string path =
      "psn_listener_test_" + std::to_string(::getpid()) + ".sock";
  ListenerConfig cfg;
  cfg.listen = path;
  {
    Harness harness(cfg);
    EXPECT_EQ(harness.listener.port(), 0u);
    Client c = Client::connect_unix(path);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(
        c.send_bytes("{\"t\":1.0,\"kind\":\"sense\",\"pid\":1,\"seq\":1}\n"));
    c.half_close();
    c.read_to_eof();
    EXPECT_NE(c.received().find("\"verdict\":\"clean\""), std::string::npos);
    EXPECT_EQ(harness.stop_and_join(), 0);
  }
  // The listener's destructor removes the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ListenerTest, BadListenSpecsAreConfigErrors) {
  std::ostringstream log;
  {
    ListenerConfig cfg;
    cfg.listen = "99999";  // all digits but not a port
    Listener listener(cfg, log);
    EXPECT_THROW(listener.open(), ConfigError);
  }
  {
    ListenerConfig cfg;
    cfg.listen = std::string(200, 'p');  // exceeds sun_path
    Listener listener(cfg, log);
    EXPECT_THROW(listener.open(), ConfigError);
  }
}

}  // namespace
}  // namespace psn::serve
