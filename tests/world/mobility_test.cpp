#include "world/mobility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::world {
namespace {

using namespace psn::time_literals;

sim::SimConfig config_for(std::int64_t seconds, std::uint64_t seed = 1) {
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.horizon = SimTime::zero() + Duration::seconds(seconds);
  return cfg;
}

TEST(RandomWaypointTest, StaysInsideField) {
  sim::Simulation sim(config_for(120));
  WorldModel world(sim);
  const ObjectId zebra = world.create_object("zebra", {50.0, 50.0});
  RandomWaypointConfig cfg;
  cfg.width = 100.0;
  cfg.height = 80.0;
  RandomWaypointMobility mob(world, zebra, cfg, Rng(1));

  double max_x = 0, max_y = 0, min_x = 1e9, min_y = 1e9;
  world.add_move_sink([&](ObjectId, const Point2D& p) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  });
  mob.start();
  sim.run();

  EXPECT_GE(min_x, 0.0);
  EXPECT_GE(min_y, 0.0);
  EXPECT_LE(max_x, 100.0);
  EXPECT_LE(max_y, 80.0);
  EXPECT_GT(mob.distance_travelled(), 10.0);
  EXPECT_GT(mob.waypoints_visited(), 1u);
}

TEST(RandomWaypointTest, SpeedBoundsRespected) {
  sim::Simulation sim(config_for(60));
  WorldModel world(sim);
  const ObjectId o = world.create_object("o", {10.0, 10.0});
  RandomWaypointConfig cfg;
  cfg.speed_min = 1.0;
  cfg.speed_max = 1.0;  // exactly 1 m/s
  cfg.tick = 100_ms;
  cfg.pause = Duration::seconds(1);
  RandomWaypointMobility mob(world, o, cfg, Rng(2));

  Point2D prev = world.object(o).location();
  double max_step = 0.0;
  world.add_move_sink([&](ObjectId, const Point2D& p) {
    max_step = std::max(max_step, prev.distance_to(p));
    prev = p;
  });
  mob.start();
  sim.run();
  // One tick at 1 m/s covers at most 0.1 m.
  EXPECT_LE(max_step, 0.1 + 1e-9);
}

TEST(RandomWaypointTest, DistanceMatchesSpeedBudget) {
  sim::Simulation sim(config_for(100));
  WorldModel world(sim);
  const ObjectId o = world.create_object("o", {0.0, 0.0});
  RandomWaypointConfig cfg;
  cfg.speed_min = 2.0;
  cfg.speed_max = 2.0;
  cfg.pause = Duration::millis(1);  // nearly no pausing
  RandomWaypointMobility mob(world, o, cfg, Rng(3));
  mob.start();
  sim.run();
  // ~2 m/s for 100 s, minus waypoint-arrival truncation: within [120, 200].
  EXPECT_GT(mob.distance_travelled(), 120.0);
  EXPECT_LE(mob.distance_travelled(), 200.0 + 1e-9);
}

TEST(RandomWaypointTest, DeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim(config_for(30, 9));
    WorldModel world(sim);
    const ObjectId o = world.create_object("o", {5.0, 5.0});
    RandomWaypointMobility mob(world, o, {}, Rng(seed));
    mob.start();
    sim.run();
    const auto& p = world.object(o).location();
    return std::pair{p.x, p.y};
  };
  EXPECT_EQ(run_once(4), run_once(4));
  EXPECT_NE(run_once(4), run_once(5));
}

TEST(RandomWaypointTest, Validation) {
  sim::Simulation sim(config_for(1));
  WorldModel world(sim);
  const ObjectId o = world.create_object("o");
  RandomWaypointConfig bad;
  bad.speed_min = 2.0;
  bad.speed_max = 1.0;
  EXPECT_THROW(RandomWaypointMobility(world, o, bad, Rng(1)), InvariantError);
}

TEST(PatrolTest, VisitsWaypointsInOrder) {
  sim::Simulation sim(config_for(60));
  WorldModel world(sim);
  const ObjectId o = world.create_object("guard", {0.0, 0.0});
  // Square patrol.
  PatrolMobility patrol(world, o,
                        {{10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}, {0.0, 0.0}},
                        /*speed=*/2.0, /*tick=*/100_ms);
  std::vector<Point2D> visits;
  world.add_move_sink([&](ObjectId, const Point2D& p) {
    for (const Point2D corner : {Point2D{10.0, 0.0}, Point2D{10.0, 10.0},
                                 Point2D{0.0, 10.0}, Point2D{0.0, 0.0}}) {
      if (p == corner) visits.push_back(p);
    }
  });
  patrol.start();
  sim.run();
  ASSERT_GE(visits.size(), 4u);
  EXPECT_EQ(visits[0], (Point2D{10.0, 0.0}));
  EXPECT_EQ(visits[1], (Point2D{10.0, 10.0}));
  EXPECT_EQ(visits[2], (Point2D{0.0, 10.0}));
  EXPECT_EQ(visits[3], (Point2D{0.0, 0.0}));
}

}  // namespace
}  // namespace psn::world
