#include "world/generators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace psn::world {
namespace {

using namespace psn::time_literals;

TEST(PoissonArrivalsTest, MeanGapMatchesRate) {
  PoissonArrivals p(20.0);
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(p.next_gap(rng).to_seconds());
  EXPECT_NEAR(s.mean(), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 20.0);
}

TEST(PoissonArrivalsTest, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0), InvariantError);
  EXPECT_THROW(PoissonArrivals(-1.0), InvariantError);
}

TEST(PeriodicArrivalsTest, ExactWithoutJitter) {
  PeriodicArrivals p(100_ms);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.next_gap(rng), 100_ms);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 10.0);
}

TEST(PeriodicArrivalsTest, JitterBounded) {
  PeriodicArrivals p(100_ms, 20_ms);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Duration g = p.next_gap(rng);
    EXPECT_GE(g, 80_ms);
    EXPECT_LE(g, 120_ms);
  }
}

TEST(PeriodicArrivalsTest, Validation) {
  EXPECT_THROW(PeriodicArrivals(Duration::zero()), InvariantError);
  EXPECT_THROW(PeriodicArrivals(10_ms, 10_ms), InvariantError);
}

TEST(BurstyArrivalsTest, MeanRateBetweenRegimes) {
  BurstyArrivals b(1.0, 100.0, 1_s, 1_s);
  Rng rng(4);
  // Count events over simulated time via accumulated gaps.
  Duration total = Duration::zero();
  std::size_t events = 0;
  while (total < Duration::seconds(200)) {
    total += b.next_gap(rng);
    events++;
  }
  const double rate = static_cast<double>(events) / total.to_seconds();
  EXPECT_GT(rate, 10.0);   // far above the quiet regime
  EXPECT_LT(rate, 100.0);  // below the pure burst regime
  EXPECT_NEAR(b.mean_rate(), 50.5, 1e-9);
}

TEST(BurstyArrivalsTest, Validation) {
  EXPECT_THROW(BurstyArrivals(0.0, 1.0, 1_s, 1_s), InvariantError);
  EXPECT_THROW(BurstyArrivals(1.0, 1.0, Duration::zero(), 1_s),
               InvariantError);
}

TEST(CounterValueTest, IncrementsFromCurrent) {
  CounterValue c(2);
  Rng rng(5);
  EXPECT_EQ(c.next(AttributeValue(std::int64_t{10}), rng).as_int(), 12);
  // Non-integer current resets to the step.
  EXPECT_EQ(c.next(AttributeValue(true), rng).as_int(), 2);
}

TEST(ToggleValueTest, Flips) {
  ToggleValue t;
  Rng rng(6);
  EXPECT_TRUE(t.next(AttributeValue(false), rng).as_bool());
  EXPECT_FALSE(t.next(AttributeValue(true), rng).as_bool());
  // Non-bool current becomes true.
  EXPECT_TRUE(t.next(AttributeValue(std::int64_t{3}), rng).as_bool());
}

TEST(RandomWalkValueTest, StaysWithinBoundsAndStep) {
  RandomWalkValue w(1.0, 0.0, 10.0);
  Rng rng(7);
  AttributeValue cur(5.0);
  for (int i = 0; i < 5000; ++i) {
    const AttributeValue next = w.next(cur, rng);
    EXPECT_GE(next.as_double(), 0.0);
    EXPECT_LE(next.as_double(), 10.0);
    EXPECT_LE(std::abs(next.as_double() - cur.numeric()), 1.0 + 1e-12);
    cur = next;
  }
}

TEST(RandomWalkValueTest, Validation) {
  EXPECT_THROW(RandomWalkValue(0.0, 0.0, 1.0), InvariantError);
  EXPECT_THROW(RandomWalkValue(1.0, 2.0, 1.0), InvariantError);
}

TEST(ChoiceValueTest, DrawsFromSet) {
  ChoiceValue c({10, 20, 30});
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const auto v = c.next(AttributeValue(), rng).as_int();
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
  EXPECT_THROW(ChoiceValue({}), InvariantError);
}

TEST(AttributeDriverTest, EmitsUntilHorizon) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + 10_s;
  sim::Simulation sim(cfg);
  WorldModel world(sim);
  const ObjectId obj = world.create_object("o");
  world.object(obj).set_attribute("count", std::int64_t{0});

  AttributeDriver driver(world, obj, "count",
                         std::make_unique<PeriodicArrivals>(1_s),
                         std::make_unique<CounterValue>(), Rng(9));
  driver.start();
  sim.run();
  EXPECT_EQ(driver.events_emitted(), 10u);
  EXPECT_EQ(world.object(obj).attribute("count").as_int(), 10);
  EXPECT_EQ(world.timeline().size(), 10u);
}

TEST(AttributeDriverTest, ValuesFeedForward) {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + 3_s;
  sim::Simulation sim(cfg);
  WorldModel world(sim);
  const ObjectId obj = world.create_object("o");
  world.object(obj).set_attribute("flag", false);
  AttributeDriver driver(world, obj, "flag",
                         std::make_unique<PeriodicArrivals>(1_s),
                         std::make_unique<ToggleValue>(), Rng(10));
  driver.start();
  sim.run();
  // Three toggles from false: true, false, true.
  EXPECT_TRUE(world.object(obj).attribute("flag").as_bool());
}

}  // namespace
}  // namespace psn::world
