#include "world/world_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::world {
namespace {

using namespace psn::time_literals;

sim::SimConfig quick_config() {
  sim::SimConfig cfg;
  cfg.horizon = SimTime::zero() + 10_s;
  return cfg;
}

TEST(WorldModelTest, CreateAndAccessObjects) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId a = world.create_object("door", {1.0, 2.0});
  const ObjectId b = world.create_object("room");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(world.num_objects(), 2u);
  EXPECT_EQ(world.object(a).name(), "door");
  EXPECT_EQ(world.object(a).location(), (Point2D{1.0, 2.0}));
  EXPECT_THROW(world.object(7), InvariantError);
}

TEST(WorldModelTest, EmitUpdatesObjectAndTimeline) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId a = world.create_object("door");
  world.emit(a, "entered", std::int64_t{5});
  EXPECT_EQ(world.object(a).attribute("entered").as_int(), 5);
  ASSERT_EQ(world.timeline().size(), 1u);
  EXPECT_EQ(world.timeline().at(0).attribute, "entered");
  EXPECT_EQ(world.timeline().at(0).when, SimTime::zero());
}

TEST(WorldModelTest, SinksSeeEventsInEmissionOrder) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId a = world.create_object("o");
  std::vector<std::string> seen;
  world.add_sink([&](const WorldEvent& ev) { seen.push_back(ev.attribute); });
  world.add_sink([&](const WorldEvent& ev) {
    seen.push_back(ev.attribute + "-second");
  });
  world.emit(a, "x", 1);
  world.emit(a, "y", 2);
  EXPECT_EQ(seen,
            (std::vector<std::string>{"x", "x-second", "y", "y-second"}));
}

TEST(WorldModelTest, CovertChannelInducesDelayedEvent) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId pen = world.create_object("pen");
  const ObjectId desk = world.create_object("desk");
  CovertChannelSpec ch;
  ch.from = pen;
  ch.trigger_attribute = "moved";
  ch.to = desk;
  ch.induced_attribute = "pen_present";
  ch.delay = 50_ms;
  world.add_covert_channel(ch);

  world.emit(pen, "moved", true);
  EXPECT_EQ(world.timeline().size(), 1u);
  sim.run();
  ASSERT_EQ(world.timeline().size(), 2u);
  const WorldEvent& induced = world.timeline().at(1);
  EXPECT_EQ(induced.object, desk);
  EXPECT_EQ(induced.attribute, "pen_present");
  EXPECT_EQ(induced.when, SimTime::zero() + 50_ms);
  EXPECT_EQ(induced.covert_cause, 0u);
  EXPECT_TRUE(world.timeline().covert_ancestor(0, 1));
}

TEST(WorldModelTest, CovertChannelTransform) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId a = world.create_object("a");
  const ObjectId b = world.create_object("b");
  CovertChannelSpec ch;
  ch.from = a;
  ch.trigger_attribute = "count";
  ch.to = b;
  ch.induced_attribute = "count";
  ch.delay = 1_ms;
  ch.transform = [](const AttributeValue& v) {
    return AttributeValue(v.as_int() * 10);
  };
  world.add_covert_channel(ch);
  world.emit(a, "count", std::int64_t{4});
  sim.run();
  EXPECT_EQ(world.object(b).attribute("count").as_int(), 40);
}

TEST(WorldModelTest, CovertChainPropagates) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  const ObjectId a = world.create_object("a");
  const ObjectId b = world.create_object("b");
  const ObjectId c = world.create_object("c");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, c}}) {
    CovertChannelSpec ch;
    ch.from = from;
    ch.trigger_attribute = "fire";
    ch.to = to;
    ch.induced_attribute = "fire";
    ch.delay = 10_ms;
    world.add_covert_channel(ch);
  }
  world.emit(a, "fire", true);  // wind spreading a forest fire (paper §4.1)
  sim.run();
  ASSERT_EQ(world.timeline().size(), 3u);
  EXPECT_TRUE(world.timeline().covert_ancestor(0, 2));
  EXPECT_EQ(world.timeline().at(2).when, SimTime::zero() + 20_ms);
}

TEST(WorldModelTest, ChannelValidation) {
  sim::Simulation sim(quick_config());
  WorldModel world(sim);
  world.create_object("only");
  CovertChannelSpec ch;
  ch.from = 0;
  ch.to = 5;  // nonexistent
  ch.trigger_attribute = "x";
  ch.induced_attribute = "y";
  EXPECT_THROW(world.add_covert_channel(ch), InvariantError);
}

TEST(WorldObjectTest, AttributeAccess) {
  WorldObject o(0, "thing", {});
  EXPECT_FALSE(o.has_attribute("temp"));
  EXPECT_THROW(o.attribute("temp"), InvariantError);
  o.set_attribute("temp", 21.5);
  EXPECT_TRUE(o.has_attribute("temp"));
  EXPECT_DOUBLE_EQ(o.attribute("temp").as_double(), 21.5);
}

TEST(AttributeValueTest, TypesAndNumeric) {
  EXPECT_EQ(AttributeValue(std::int64_t{7}).as_int(), 7);
  EXPECT_TRUE(AttributeValue(true).as_bool());
  EXPECT_DOUBLE_EQ(AttributeValue(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(AttributeValue(std::int64_t{7}).numeric(), 7.0);
  EXPECT_DOUBLE_EQ(AttributeValue(true).numeric(), 1.0);
  EXPECT_DOUBLE_EQ(AttributeValue(false).numeric(), 0.0);
  EXPECT_THROW(AttributeValue(1.0).as_int(), InvariantError);
  EXPECT_EQ(AttributeValue(std::int64_t{3}).to_string(), "3");
  EXPECT_EQ(AttributeValue(true).to_string(), "true");
}

}  // namespace
}  // namespace psn::world
