#include "world/timeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::world {
namespace {

using namespace psn::time_literals;

WorldEvent make_event(std::int64_t ms, ObjectId obj, const std::string& attr,
                      AttributeValue value,
                      WorldEventIndex cause = kNoWorldEvent) {
  WorldEvent ev;
  ev.when = SimTime::zero() + Duration::millis(ms);
  ev.object = obj;
  ev.attribute = attr;
  ev.value = value;
  ev.covert_cause = cause;
  return ev;
}

TEST(WorldTimelineTest, AppendAssignsIndices) {
  WorldTimeline t;
  EXPECT_EQ(t.append(make_event(1, 0, "x", 1)), 0u);
  EXPECT_EQ(t.append(make_event(2, 0, "x", 2)), 1u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(1).index, 1u);
}

TEST(WorldTimelineTest, RejectsOutOfOrderAppend) {
  WorldTimeline t;
  t.append(make_event(10, 0, "x", 1));
  EXPECT_THROW(t.append(make_event(5, 0, "x", 2)), InvariantError);
}

TEST(WorldTimelineTest, AllowsEqualTimes) {
  WorldTimeline t;
  t.append(make_event(10, 0, "x", 1));
  EXPECT_NO_THROW(t.append(make_event(10, 1, "y", 2)));
}

TEST(WorldTimelineTest, ValueAtPicksLatestNotAfter) {
  WorldTimeline t;
  t.append(make_event(10, 0, "x", 1));
  t.append(make_event(20, 0, "x", 2));
  t.append(make_event(30, 0, "x", 3));

  auto at = [&](std::int64_t ms) {
    return t.value_at(0, "x", SimTime::zero() + Duration::millis(ms));
  };
  EXPECT_FALSE(at(5).has_value());
  EXPECT_EQ(at(10)->as_int(), 1);
  EXPECT_EQ(at(15)->as_int(), 1);
  EXPECT_EQ(at(20)->as_int(), 2);
  EXPECT_EQ(at(99)->as_int(), 3);
}

TEST(WorldTimelineTest, ValueAtUnknownVariable) {
  WorldTimeline t;
  t.append(make_event(10, 0, "x", 1));
  EXPECT_FALSE(t.value_at(0, "y", SimTime::max()).has_value());
  EXPECT_FALSE(t.value_at(9, "x", SimTime::max()).has_value());
}

TEST(WorldTimelineTest, HistoryPerVariable) {
  WorldTimeline t;
  t.append(make_event(1, 0, "x", 1));
  t.append(make_event(2, 1, "x", 5));
  t.append(make_event(3, 0, "x", 2));
  t.append(make_event(4, 0, "y", 9));
  EXPECT_EQ(t.history(0, "x"), (std::vector<WorldEventIndex>{0, 2}));
  EXPECT_EQ(t.history(1, "x"), (std::vector<WorldEventIndex>{1}));
  EXPECT_EQ(t.history(0, "y"), (std::vector<WorldEventIndex>{3}));
  EXPECT_TRUE(t.history(2, "z").empty());
}

TEST(WorldTimelineTest, CovertAncestryChain) {
  WorldTimeline t;
  t.append(make_event(1, 0, "x", 1));                      // 0: spontaneous
  t.append(make_event(2, 1, "y", 2, /*cause=*/0));          // 1: caused by 0
  t.append(make_event(3, 2, "z", 3, /*cause=*/1));          // 2: caused by 1
  t.append(make_event(4, 3, "w", 4));                       // 3: spontaneous
  EXPECT_TRUE(t.covert_ancestor(0, 2));
  EXPECT_TRUE(t.covert_ancestor(1, 2));
  EXPECT_TRUE(t.covert_ancestor(2, 2));  // reflexive
  EXPECT_FALSE(t.covert_ancestor(2, 0));
  EXPECT_FALSE(t.covert_ancestor(0, 3));
}

TEST(WorldTimelineTest, OutOfRangeIndexThrows) {
  WorldTimeline t;
  EXPECT_THROW(t.at(0), InvariantError);
  t.append(make_event(1, 0, "x", 1));
  EXPECT_THROW(t.covert_ancestor(0, 5), InvariantError);
}

}  // namespace
}  // namespace psn::world
