#include "world/scenarios.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace psn::world {
namespace {

using namespace psn::time_literals;

sim::SimConfig config_for(std::int64_t seconds, std::uint64_t seed = 1) {
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.horizon = SimTime::zero() + Duration::seconds(seconds);
  return cfg;
}

TEST(ExhibitionHallTest, CreatesDoorObjectsWithCounters) {
  sim::Simulation sim(config_for(1));
  WorldModel world(sim);
  ExhibitionHallConfig cfg;
  cfg.doors = 3;
  ExhibitionHall hall(world, cfg, Rng(1));
  EXPECT_EQ(world.num_objects(), 3u);
  for (int k = 0; k < 3; ++k) {
    const WorldObject& door = world.object(hall.door_object(k));
    EXPECT_EQ(door.attribute("entered").as_int(), 0);
    EXPECT_EQ(door.attribute("exited").as_int(), 0);
  }
  EXPECT_THROW(hall.door_object(3), InvariantError);
}

TEST(ExhibitionHallTest, OccupancyEqualsCounterDifference) {
  sim::Simulation sim(config_for(30));
  WorldModel world(sim);
  ExhibitionHallConfig cfg;
  cfg.doors = 4;
  cfg.capacity = 50;
  cfg.target_occupancy = 50;
  cfg.initial_occupancy = 45;
  cfg.movement_rate = 30.0;
  ExhibitionHall hall(world, cfg, Rng(2));
  hall.start();
  sim.run();

  std::int64_t entered = 0, exited = 0;
  for (int k = 0; k < cfg.doors; ++k) {
    entered += world.object(hall.door_object(k)).attribute("entered").as_int();
    exited += world.object(hall.door_object(k)).attribute("exited").as_int();
  }
  EXPECT_EQ(entered - exited, hall.true_occupancy());
  EXPECT_GE(hall.true_occupancy(), 0);
  EXPECT_GT(world.timeline().size(), 100u);  // the crowd actually moved
}

TEST(ExhibitionHallTest, OccupancyHoversAroundTarget) {
  sim::Simulation sim(config_for(120));
  WorldModel world(sim);
  ExhibitionHallConfig cfg;
  cfg.doors = 2;
  cfg.capacity = 100;
  cfg.target_occupancy = 100;
  cfg.initial_occupancy = 100;
  cfg.movement_rate = 50.0;
  ExhibitionHall hall(world, cfg, Rng(3));
  hall.start();
  sim.run();
  EXPECT_NEAR(hall.true_occupancy(), 100, 40);
}

TEST(ExhibitionHallTest, ThresholdGetsCrossedRepeatedly) {
  sim::Simulation sim(config_for(60));
  WorldModel world(sim);
  ExhibitionHallConfig cfg;
  cfg.doors = 2;
  cfg.capacity = 50;
  cfg.target_occupancy = 50;
  cfg.initial_occupancy = 48;
  cfg.movement_rate = 20.0;
  ExhibitionHall hall(world, cfg, Rng(4));
  hall.start();
  sim.run();

  // Replay the timeline and count occupancy threshold crossings.
  std::int64_t occupancy = 0;
  int crossings = 0;
  bool above = false;
  for (const auto& ev : world.timeline().events()) {
    if (ev.attribute == "entered") occupancy++;
    if (ev.attribute == "exited") occupancy--;
    const bool now_above = occupancy > cfg.capacity;
    if (now_above != above) crossings++;
    above = now_above;
  }
  EXPECT_GT(crossings, 4);
}

TEST(ExhibitionHallTest, InitialSeedEmitsWorldEvents) {
  sim::Simulation sim(config_for(1));
  WorldModel world(sim);
  ExhibitionHallConfig cfg;
  cfg.doors = 2;
  cfg.initial_occupancy = 20;
  cfg.movement_rate = 0.001;  // essentially no movement afterwards
  ExhibitionHall hall(world, cfg, Rng(5));
  hall.start();
  EXPECT_EQ(world.timeline().size(), 20u);
  EXPECT_EQ(hall.true_occupancy(), 20);
}

TEST(ExhibitionHallTest, ConfigValidation) {
  sim::Simulation sim(config_for(1));
  WorldModel world(sim);
  ExhibitionHallConfig bad;
  bad.doors = 0;
  EXPECT_THROW(ExhibitionHall(world, bad, Rng(1)), InvariantError);
}

TEST(SmartOfficeTest, BuildsRoomsAndDrives) {
  sim::Simulation sim(config_for(20));
  WorldModel world(sim);
  SmartOfficeConfig cfg;
  cfg.rooms = 2;
  SmartOffice office(world, cfg, Rng(6));
  office.start();
  sim.run();

  for (int k = 0; k < 2; ++k) {
    const WorldObject& room = world.object(office.room_object(k));
    const double temp = room.attribute("temp").as_double();
    EXPECT_GE(temp, cfg.temp_lo);
    EXPECT_LE(temp, cfg.temp_hi);
    EXPECT_TRUE(room.attribute("occupied").is_bool());
  }
  // Initial emissions (2 per room) plus driver events.
  EXPECT_GT(world.timeline().size(), 10u);
}

TEST(SmartOfficeTest, InitialConditionsPublished) {
  sim::Simulation sim(config_for(1));
  WorldModel world(sim);
  SmartOfficeConfig cfg;
  cfg.rooms = 1;
  SmartOffice office(world, cfg, Rng(7));
  office.start();
  ASSERT_GE(world.timeline().size(), 2u);
  EXPECT_EQ(world.timeline().at(0).attribute, "temp");
  EXPECT_EQ(world.timeline().at(1).attribute, "occupied");
}

TEST(HospitalWardTest, BuildsWaitingRoomAndWard) {
  sim::Simulation sim(config_for(30));
  WorldModel world(sim);
  HospitalWardConfig cfg;
  HospitalWard hospital(world, cfg, Rng(8));
  hospital.start();
  sim.run();

  // Waiting room doors exist and saw traffic.
  std::int64_t entered = 0;
  for (int k = 0; k < cfg.waiting_room_doors; ++k) {
    entered += world.object(hospital.waiting_door_object(k))
                   .attribute("entered")
                   .as_int();
  }
  EXPECT_GT(entered, 0);

  const WorldObject& ward = world.object(hospital.ward_object());
  EXPECT_TRUE(ward.attribute("occupied").is_bool());
  EXPECT_TRUE(ward.attribute("restricted").is_bool());
}

}  // namespace
}  // namespace psn::world
