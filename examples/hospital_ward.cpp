// Hospital scenario (paper §5): RFID badges on visitors and patients.
// Two predicates are monitored simultaneously over the same execution:
//
//   overcrowded:  sum(entered) - sum(exited) > capacity   (waiting room,
//                 relational, the hall predicate at smaller scale), and
//   violation:    occupied[w] && restricted[w]             (someone is in the
//                 infectious-diseases ward while it is restricted).
//
// One run, one strobe stream, two predicates — showing that the root can
// evaluate any number of predicates over the same observation log.
//
// Usage: hospital_ward [seconds] [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"
#include "world/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  const auto seconds = argc > 1 ? std::atoll(argv[1]) : 120;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3;

  world::HospitalWardConfig ward_cfg;

  core::SystemConfig sys;
  // P_1, P_2: waiting-room door sensors; P_3: ward sensor.
  sys.num_sensors = static_cast<std::size_t>(ward_cfg.waiting_room_doors) + 1;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(seconds);
  sys.delta = Duration::millis(80);
  core::PervasiveSystem system(sys);

  world::HospitalWard hospital(system.world(), ward_cfg,
                               system.sim().rng_for("hospital"));

  for (int k = 0; k < ward_cfg.waiting_room_doors; ++k) {
    const auto pid = static_cast<ProcessId>(k + 1);
    system.assign(hospital.waiting_door_object(k), "entered", pid);
    system.assign(hospital.waiting_door_object(k), "exited", pid);
  }
  const auto ward_pid =
      static_cast<ProcessId>(ward_cfg.waiting_room_doors + 1);
  system.assign(hospital.ward_object(), "occupied", ward_pid);
  system.assign(hospital.ward_object(), "restricted", ward_pid);

  const core::Predicate overcrowded = core::parse_predicate(
      "overcrowded", "sum(entered) - sum(exited) > " +
                         std::to_string(ward_cfg.waiting_room_capacity));
  const core::Predicate violation = core::parse_predicate(
      "ward_violation", "occupied[" + std::to_string(ward_pid) +
                            "] && restricted[" + std::to_string(ward_pid) +
                            "]");

  hospital.start();
  system.run();

  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = sys.delta * 2 + Duration::millis(1);

  for (const core::Predicate* phi : {&overcrowded, &violation}) {
    const core::GroundTruthOracle oracle(*phi, system.sensing());
    const auto truth = oracle.evaluate(system.timeline(), sys.sim.horizon);
    std::printf("predicate '%s': %zu true occurrences (%.1f%% of time)\n",
                phi->name().c_str(), truth.occurrences.size(),
                100.0 * truth.fraction_true);

    Table table({"detector", "TP", "FP", "FN", "FN covered", "recall",
                 "precision"});
    for (const auto& det : core::all_online_detectors()) {
      const auto detections = det->run(system.log(), *phi);
      const auto score =
          analysis::score_detections(truth, detections, score_cfg);
      table.row()
          .cell(det->name())
          .cell(score.true_positives)
          .cell(score.false_positives)
          .cell(score.false_negatives)
          .cell(score.fn_covered_by_borderline)
          .cell(score.recall(), 3)
          .cell(score.precision(), 3);
    }
    std::printf("%s\n", table.ascii().c_str());
  }

  const auto& strobes = system.message_stats().of(net::MessageKind::kStrobe);
  std::printf("strobe traffic: %zu transmissions, %zu delivered, %zu bytes\n",
              strobes.sent, strobes.delivered, strobes.bytes_sent);
  return 0;
}
