// Quickstart: the smallest end-to-end use of the library.
//
// Two door sensors watch an exhibition hall; the root monitor must detect
// every time the occupancy predicate  sum(entered) - sum(exited) > 50
// becomes true — using only logical strobe clocks (no synchronized physical
// clocks), exactly the setting of the paper's Section 5.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

int main() {
  using namespace psn;

  analysis::OccupancyConfig config;
  config.doors = 2;
  config.capacity = 50;
  config.movement_rate = 10.0;            // people movements per second
  config.delta = Duration::millis(50);    // Δ-bounded message delay
  config.horizon = Duration::seconds(30);
  config.seed = 42;

  std::printf("Running 2-door occupancy scenario (capacity %d, 30 s)...\n\n",
              config.capacity);
  const analysis::OccupancyRunResult run =
      analysis::run_occupancy_experiment(config);

  std::printf("world events: %zu   reports received at root: %zu\n",
              run.world_events, run.observed_updates);
  std::printf("ground truth: predicate became true %zu times (%.1f%% of time)\n\n",
              run.oracle.occurrences.size(), 100.0 * run.oracle.fraction_true);

  Table table({"detector", "detections", "borderline", "TP", "FP", "FN",
               "FN covered", "recall", "precision", "belief acc"});
  for (const auto& out : run.outcomes) {
    table.row()
        .cell(out.detector)
        .cell(out.score.confident_detections)
        .cell(out.score.borderline_detections)
        .cell(out.score.true_positives)
        .cell(out.score.false_positives)
        .cell(out.score.false_negatives)
        .cell(out.score.fn_covered_by_borderline)
        .cell(out.score.recall(), 3)
        .cell(out.score.precision(), 3)
        .cell(out.belief_accuracy, 3);
  }
  std::printf("%s\n", table.ascii().c_str());

  std::printf(
      "Reading the table: the strobe-vector detector flags racy transitions\n"
      "as 'borderline' instead of asserting them; the strobe-scalar detector\n"
      "cannot see races and reports them confidently (its FPs); the physical\n"
      "detector with eps-synchronized clocks is the near-ideal reference.\n");
  return 0;
}
