// The secure-banking rule from the paper (§3.1.1.a.ii, citing [22]):
// "a biometric key is presented remotely after a password is entered across
// the network" — a *relative timing relation* between two intervals at
// different locations, with a real-time bound.
//
// Two terminals: P_1 validates passwords, P_2 reads biometrics. The rule:
//     password session  BEFORE  biometric presentation, gap <= 5 s.
// Matches are additionally *causally certified* when the strobe vector
// stamps order the intervals — a match that rests only on ε-synchronized
// timestamps could be a race artifact (the paper's second open direction in
// §6 names exactly this application for the partial order model).
//
// Usage: secure_banking [sessions] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/interval_algebra.hpp"
#include "core/system.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  const int sessions = argc > 1 ? std::atoi(argv[1]) : 12;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 8;

  core::SystemConfig sys;
  sys.num_sensors = 2;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(10 * (sessions + 1));
  sys.delta = Duration::millis(120);
  core::PervasiveSystem system(sys);

  const auto pwd_terminal = system.world().create_object("password_terminal");
  const auto bio_terminal = system.world().create_object("biometric_reader");
  system.world().object(pwd_terminal).set_attribute("password_ok", false);
  system.world().object(bio_terminal).set_attribute("biometric_ok", false);
  system.assign(pwd_terminal, "password_ok", 1);
  system.assign(bio_terminal, "biometric_ok", 2);

  // Script the sessions: most are legitimate (biometric follows the
  // password within the window); some are violations (biometric too late,
  // or with no password at all).
  auto& sched = system.sim().scheduler();
  Rng rng = system.sim().rng_for("sessions");
  int legitimate = 0;
  for (int s = 0; s < sessions; ++s) {
    const SimTime base = SimTime::zero() + Duration::seconds(10 * (s + 1));
    const bool valid = rng.bernoulli(0.7);
    if (valid) legitimate++;
    // Password entry session: 1.5 s.
    if (valid || rng.bernoulli(0.5)) {
      sched.schedule_at(base, [&system, pwd_terminal] {
        system.world().emit(pwd_terminal, "password_ok", true);
      });
      sched.schedule_at(base + Duration::millis(1500),
                        [&system, pwd_terminal] {
                          system.world().emit(pwd_terminal, "password_ok",
                                              false);
                        });
    }
    // Biometric presentation: within 2 s if valid, after 8 s if not.
    const Duration gap =
        valid ? Duration::millis(rng.uniform_int(200, 2000))
              : Duration::millis(rng.uniform_int(8000, 9000));
    const SimTime bio_at = base + Duration::millis(1500) + gap;
    sched.schedule_at(bio_at, [&system, bio_terminal] {
      system.world().emit(bio_terminal, "biometric_ok", true);
    });
    sched.schedule_at(bio_at + Duration::millis(800),
                      [&system, bio_terminal] {
                        system.world().emit(bio_terminal, "biometric_ok",
                                            false);
                      });
  }
  system.run();

  core::RelativeTimingSpec spec;
  spec.relation = core::AllenRelation::kBefore;
  spec.max_gap = Duration::seconds(5);
  core::RelativeTimingDetector detector(
      core::VarRef{1, "password_ok"}, [](double v) { return v > 0; },
      core::VarRef{2, "biometric_ok"}, [](double v) { return v > 0; }, spec);
  const auto matches = detector.run(system.log());

  std::printf(
      "Secure banking: %d sessions scripted, %d legitimate "
      "(password then biometric within 5 s)\n\n",
      sessions, legitimate);

  Table table({"match", "password ends", "biometric begins", "gap (ms)",
               "causally certified"});
  for (std::size_t m = 0; m < matches.size(); ++m) {
    const auto& x = matches[m].x;
    const auto& y = matches[m].y;
    table.row()
        .cell(m + 1)
        .cell(x.when.end.to_string())
        .cell(y.when.begin.to_string())
        .cell((y.when.begin - x.when.end).to_millis(), 4)
        .cell(matches[m].causally_certified ? "yes" : "NO (race)");
  }
  std::printf("%s\n", table.ascii().c_str());
  std::printf(
      "authenticated sessions detected: %zu of %d legitimate.\n"
      "A 'NO (race)' row would mean the order rests only on eps-accurate\n"
      "timestamps — the strobe partial order could not certify it.\n",
      matches.size(), legitimate);
  return 0;
}
