// psn_cli — command-line driver for the simulation testbed, as subcommands:
//
//   psn_cli run    [options]   simulate a scenario, print the detector
//                              scorecard (optionally CSV / metrics / trace)
//   psn_cli check  [options]   one traced run through the causality &
//                              clock-contract checker and the Δ-race audit
//   psn_cli serve  [options]   soak server: verify JSONL trace streams
//                              incrementally with bounded memory — from
//                              stdin, or many at once via --listen
//
// Shared scenario options (run / check):
//     --scenario hall|office|hospital|city   (default hall)
//     --doors N          door/sensor count for hall        (default 4)
//     --capacity N       hall capacity threshold           (default 200)
//     --rate R           world events per second           (default 20)
//     --delta MS         delay bound Delta in ms           (default 100)
//     --delay uniform|fixed|exp|sync    delay model        (default uniform)
//     --eps US           sync-clock epsilon in us          (default 100)
//     --loss P           per-transmission loss prob        (default 0)
//     --seconds S        horizon                           (default 60)
//     --seed N           RNG seed                          (default 1)
//     --mode scalar|vector|physical     wire clock mode    (default vector)
//     --validity MS      observation validity horizon, 0 = unbounded
//     --shards K         space partitions, run in lockstep Δ-windows
//                        (default 1; results byte-identical at every K)
//     --shard-threads N  worker threads for the shard fan-out (default 1)
//     --topology complete|star|ring|line    overlay        (default complete)
//     --lean-clocks      drop O(n) vector clocks (city scale)
//     --unicast          sense reports unicast to the root, not broadcast
//     --fifo             per-channel FIFO delivery (unsharded only)
//     --faults SPEC      deterministic fault plan: `;`-separated clauses
//                          crash:<pid>@<begin_s>+<dur_s>
//                          cut:<a>-<b>@<begin_s>+<dur_s>
//                          drift:<pid>@<begin_s>+<dur_s>:<ppm>
//                        e.g. --faults 'crash:2@10+5;cut:1-3@20+4'
//     --ge A,B,C,D       Gilbert–Elliott burst loss (unsharded only):
//                        P(good→bad), P(bad→good), loss in good, loss in bad
//
// run-only:  --reps N --threads N --csv PATH --metrics --trace PATH
//            --trace-cap N
// check-only: --trace-cap N
// serve-only: --procs N --retention MS --metrics-every N --lenient
//             --listen PORT|UNIX-PATH --max-streams N --max-buffer BYTES
//             --idle-timeout SECS
//
// Exit codes: 0 ok · 1 violations · 2 usage/config error · 3 stream input
// rejected (serve) · 4 trace ring truncated under check. Multi-stream serve
// aggregates across sessions: 3 beats 1 beats 0.
//
// Exit 2 covers every option combination the sharded driver cannot honor,
// each rejected with a one-line remedy before anything runs:
//   --shards K>1 with --delay sync|exp   (zero minimum one-hop delay — no
//                                         conservative window exists)
//   --shards K>1 with --fifo             (delivery-state coupling)
//   --shards K > doors+1                 (more shards than processes)
//   --lean-clocks with `check`           (the checker replays vector stamps)
//
// Examples:
//   psn_cli run --scenario hall --doors 8 --delta 250 --reps 10
//   psn_cli run --delay sync --delta 0       # the Δ=0 collapse
//   psn_cli run --trace /tmp/run.jsonl       # sense/send/deliver/... log
//   psn_cli check --mode scalar              # clock-contract replay, CI-style
//   psn_cli run --trace /dev/stdout --trace-cap 200000 | psn_cli serve
//   psn_cli serve --listen 7070 --max-streams 16   # socket soak server
//
// The pre-subcommand flat-flag form (psn_cli --check ...) still works as a
// deprecated alias and prints a migration hint on stderr.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "serve/listener.hpp"
#include "serve/soak_server.hpp"
#include "sim/fault.hpp"

namespace {

using namespace psn;

enum class Command { kRun, kCheck, kLegacy };

struct CliOptions {
  std::string scenario = "hall";
  std::size_t doors = 4;
  int capacity = 200;
  double rate = 20.0;
  std::int64_t delta_ms = 100;
  std::string delay = "uniform";
  std::int64_t eps_us = 100;
  double loss = 0.0;
  std::int64_t seconds = 60;
  std::uint64_t seed = 1;
  std::size_t reps = 1;
  unsigned threads = 0;  // 0 = one worker per hardware thread
  std::string csv;
  std::string mode = "vector";
  bool metrics = false;
  std::string trace;
  std::size_t trace_cap = 1000000;
  std::int64_t validity_ms = 0;  // 0 = unbounded
  std::size_t shards = 1;
  std::size_t shard_threads = 1;
  std::string topology;  // empty = scenario default
  bool lean_clocks = false;
  bool unicast = false;
  bool fifo = false;
  std::string faults;  // fault-plan spec (sim::parse_fault_plan grammar)
  std::string ge;      // Gilbert–Elliott params "g2b,b2g,loss_good,loss_bad"
  bool check = false;  // legacy flat-flag form only
};

[[noreturn]] void usage_error(const std::string& why) {
  std::fprintf(stderr, "psn_cli: %s (run with --help for usage)\n",
               why.c_str());
  std::exit(2);
}

void print_shared_usage() {
  std::printf(
      "  shared options:\n"
      "    [--scenario hall|office|hospital|city] [--doors N] [--capacity N]\n"
      "    [--rate R] [--delta MS] [--delay uniform|fixed|exp|sync]\n"
      "    [--eps US] [--loss P] [--seconds S] [--seed N]\n"
      "    [--mode scalar|vector|physical] [--validity MS]\n"
      "    [--shards K] [--shard-threads N]\n"
      "    [--topology complete|star|ring|line]\n"
      "    [--lean-clocks] [--unicast] [--fifo]\n"
      "    [--faults 'crash:<pid>@<s>+<s>;cut:<a>-<b>@<s>+<s>;"
      "drift:<pid>@<s>+<s>:<ppm>']\n"
      "    [--ge g2b,b2g,loss_good,loss_bad]\n");
}

[[noreturn]] void print_usage_and_exit() {
  std::printf(
      "usage: psn_cli <run|check|serve> [options]\n\n"
      "  run    simulate and print the detector scorecard\n"
      "         [--reps N] [--threads N] [--csv PATH] [--metrics]\n"
      "         [--trace PATH] [--trace-cap N]\n"
      "  check  replay one traced run through the clock-contract checker\n"
      "         and the Delta-race audit; exit 1 on violations, 4 if the\n"
      "         trace ring truncated\n"
      "         [--trace-cap N]\n"
      "  serve  verify JSONL trace streams incrementally: stdin by\n"
      "         default, or a multi-stream socket server via --listen\n"
      "         (all-digit spec = TCP port on 127.0.0.1, 0 = ephemeral;\n"
      "         anything else = unix socket path). SIGINT/SIGTERM drain\n"
      "         every session and emit its eof verdict.\n"
      "         [--procs N] [--retention MS] [--validity MS]\n"
      "         [--metrics-every N] [--lenient]\n"
      "         [--listen PORT|UNIX-PATH] [--max-streams N]\n"
      "         [--max-buffer BYTES] [--idle-timeout SECS]\n\n");
  print_shared_usage();
  std::printf(
      "\nexit codes: 0 ok, 1 violations, 2 usage/config error,\n"
      "            3 stream input rejected, 4 trace ring truncated\n");
  std::exit(0);
}

CliOptions parse_cli(const std::vector<std::string>& args, Command cmd) {
  CliOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help" || flag == "-h") print_usage_and_exit();
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) usage_error("missing value for " + flag);
      return args[++i];
    };
    // Flags restricted to `run` (and the legacy flat form).
    const bool run_like = cmd != Command::kCheck;
    if (flag == "--scenario") {
      opt.scenario = value();
    } else if (flag == "--doors") {
      opt.doors = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--capacity") {
      opt.capacity = std::atoi(value().c_str());
    } else if (flag == "--rate") {
      opt.rate = std::atof(value().c_str());
    } else if (flag == "--delta") {
      opt.delta_ms = std::atoll(value().c_str());
    } else if (flag == "--delay") {
      opt.delay = value();
    } else if (flag == "--eps") {
      opt.eps_us = std::atoll(value().c_str());
    } else if (flag == "--loss") {
      opt.loss = std::atof(value().c_str());
    } else if (flag == "--seconds") {
      opt.seconds = std::atoll(value().c_str());
    } else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (flag == "--mode") {
      opt.mode = value();
    } else if (flag == "--validity") {
      opt.validity_ms = std::atoll(value().c_str());
      if (opt.validity_ms < 0) usage_error("--validity must be >= 0");
    } else if (flag == "--shards") {
      const long long shards = std::atoll(value().c_str());
      if (shards <= 0) usage_error("--shards must be >= 1");
      opt.shards = static_cast<std::size_t>(shards);
    } else if (flag == "--shard-threads") {
      const long long n = std::atoll(value().c_str());
      if (n <= 0) usage_error("--shard-threads must be >= 1");
      opt.shard_threads = static_cast<std::size_t>(n);
    } else if (flag == "--topology") {
      opt.topology = value();
    } else if (flag == "--lean-clocks") {
      opt.lean_clocks = true;
    } else if (flag == "--unicast") {
      opt.unicast = true;
    } else if (flag == "--fifo") {
      opt.fifo = true;
    } else if (flag == "--faults") {
      opt.faults = value();
    } else if (flag == "--ge") {
      opt.ge = value();
    } else if (flag == "--trace-cap") {
      const long long cap = std::atoll(value().c_str());
      if (cap <= 0) usage_error("--trace-cap must be > 0");
      opt.trace_cap = static_cast<std::size_t>(cap);
    } else if (run_like && flag == "--reps") {
      opt.reps = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (run_like && flag == "--threads") {
      const int threads = std::atoi(value().c_str());
      if (threads < 0) usage_error("--threads must be >= 0");
      opt.threads = static_cast<unsigned>(threads);
    } else if (run_like && flag == "--csv") {
      opt.csv = value();
    } else if (run_like && flag == "--metrics") {
      opt.metrics = true;
    } else if (run_like && flag == "--trace") {
      opt.trace = value();
    } else if (cmd == Command::kLegacy && flag == "--check") {
      opt.check = true;
    } else if (cmd == Command::kRun && flag == "--check") {
      usage_error("--check moved to the `check` subcommand: psn_cli check");
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  if (opt.doors == 0 || opt.reps == 0 || opt.seconds <= 0) {
    usage_error("doors, reps, and seconds must be positive");
  }
  return opt;
}

core::DelayKind delay_kind_of(const std::string& name) {
  if (name == "uniform") return core::DelayKind::kUniformBounded;
  if (name == "fixed") return core::DelayKind::kFixed;
  if (name == "exp") return core::DelayKind::kExponential;
  if (name == "sync") return core::DelayKind::kSynchronous;
  usage_error("unknown delay model '" + name + "'");
}

core::TopologyKind topology_of(const std::string& name) {
  if (name == "complete") return core::TopologyKind::kComplete;
  if (name == "star") return core::TopologyKind::kStar;
  if (name == "ring") return core::TopologyKind::kRing;
  if (name == "line") return core::TopologyKind::kLine;
  usage_error("unknown topology '" + name + "'");
}

net::ClockMode clock_mode_of(const std::string& name) {
  if (name == "scalar") return net::ClockMode::kScalarStrobe;
  if (name == "vector") return net::ClockMode::kVectorStrobe;
  if (name == "physical") return net::ClockMode::kPhysical;
  usage_error("unknown clock mode '" + name + "'");
}

/// Maps the shared scenario options onto the occupancy harness;
/// office/hospital presets adjust rate/capacity flavor.
analysis::OccupancyConfig occupancy_config_of(const CliOptions& opt) {
  analysis::OccupancyConfig cfg;
  cfg.doors = opt.doors;
  cfg.capacity = opt.capacity;
  cfg.movement_rate = opt.rate;
  cfg.delay_kind = delay_kind_of(opt.delay);
  cfg.delta = Duration::millis(opt.delta_ms);
  cfg.sync_epsilon = Duration::micros(opt.eps_us);
  cfg.loss_probability = opt.loss;
  cfg.horizon = Duration::seconds(opt.seconds);
  cfg.seed = opt.seed;
  cfg.clock_mode = clock_mode_of(opt.mode);
  if (opt.validity_ms > 0) {
    cfg.validity_horizon.lifetime = Duration::millis(opt.validity_ms);
  }
  cfg.shards = opt.shards;
  cfg.shard_threads = opt.shard_threads;
  cfg.lean_clocks = opt.lean_clocks;
  cfg.unicast_reports = opt.unicast;
  cfg.fifo_channels = opt.fifo;
  if (opt.scenario == "office") {
    cfg.doors = std::max<std::size_t>(2, opt.doors);
    cfg.capacity = 5;  // small-room occupancy
    cfg.movement_rate = std::min(opt.rate, 2.0);
  } else if (opt.scenario == "hospital") {
    cfg.capacity = 30;
    cfg.movement_rate = std::min(opt.rate, 6.0);
  } else if (opt.scenario == "city") {
    // City-scale deployment (DESIGN.md §14): 10^5 door sensors on a star,
    // each reporting up to the mains-powered root as one unicast, lean
    // clocks (O(n)-wide vectors are intractable at this n), physical wire
    // mode. Sized for the `--shards` scaling bench; pass --doors to shrink.
    if (opt.doors == 4) cfg.doors = 100000;  // 4 = the flag's default
    cfg.capacity = static_cast<int>(cfg.doors / 2);
    cfg.movement_rate = std::max(opt.rate, 2000.0);
    cfg.topology = core::TopologyKind::kStar;
    cfg.clock_mode = net::ClockMode::kPhysical;
    cfg.lean_clocks = true;
    cfg.unicast_reports = true;
  } else if (opt.scenario != "hall") {
    usage_error("unknown scenario '" + opt.scenario + "'");
  }
  if (!opt.topology.empty()) cfg.topology = topology_of(opt.topology);
  if (!opt.faults.empty()) {
    try {
      cfg.faults = sim::parse_fault_plan(opt.faults);
    } catch (const ConfigError& e) {
      usage_error(e.what());
    }
  }
  if (!opt.ge.empty()) {
    double v[4];
    std::size_t pos = 0;
    for (int i = 0; i < 4; i++) {
      const std::size_t comma = opt.ge.find(',', pos);
      if ((comma == std::string::npos) != (i == 3)) {
        usage_error("--ge wants four comma-separated probabilities "
                    "g2b,b2g,loss_good,loss_bad");
      }
      v[i] = std::atof(opt.ge.substr(pos, comma - pos).c_str());
      if (v[i] < 0.0 || v[i] > 1.0) {
        usage_error("--ge probabilities must be in [0, 1]");
      }
      pos = comma + 1;
    }
    core::SystemConfig::GilbertElliottParams params;
    params.p_good_to_bad = v[0];
    params.p_bad_to_good = v[1];
    params.loss_in_good = v[2];
    params.loss_in_bad = v[3];
    cfg.gilbert_elliott = params;
  }
  return cfg;
}

/// A trace destined for stdout turns the process into a JSONL producer
/// (`psn_cli run --trace /dev/stdout | psn_cli serve`): every human-readable
/// line must then go to stderr or it would corrupt the stream.
bool trace_is_stdout(const CliOptions& opt) {
  return opt.trace == "-" || opt.trace == "/dev/stdout";
}

void print_header(std::FILE* out, const CliOptions& opt,
                  const analysis::OccupancyConfig& cfg) {
  std::fprintf(
      out,
      "scenario=%s doors=%zu capacity=%d rate=%.1f/s delay=%s delta=%lldms "
      "eps=%lldus loss=%.2f horizon=%llds reps=%zu seed=%llu mode=%s\n\n",
      opt.scenario.c_str(), cfg.doors, cfg.capacity, cfg.movement_rate,
      opt.delay.c_str(), static_cast<long long>(opt.delta_ms),
      static_cast<long long>(opt.eps_us), opt.loss,
      static_cast<long long>(opt.seconds), opt.reps,
      static_cast<unsigned long long>(opt.seed),
      net::to_string(cfg.clock_mode));
  if (cfg.shards > 1) {
    std::fprintf(out, "shards=%zu shard-threads=%zu\n\n", cfg.shards,
                 cfg.shard_threads);
  }
}

/// The checker half of the legacy flat-flag form and the whole `check`
/// subcommand. Returns the process exit code.
int run_check(const analysis::OccupancyConfig& base, const CliOptions& opt) {
  analysis::OccupancyConfig checked = base;
  checked.check = true;
  if (checked.trace_capacity == 0) checked.trace_capacity = opt.trace_cap;
  try {
    const analysis::OccupancyRunResult run =
        analysis::run_occupancy_experiment(checked);
    std::printf("\n%s", run.check->summary().c_str());
    if (!run.check->clean()) return 1;
  } catch (const check::TraceWindowError& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    std::fprintf(stderr,
                 "psn_cli: remedy: rerun with --trace-cap above the run's "
                 "record count, or pipe the trace through `psn_cli serve` "
                 "(streaming needs no ring)\n");
    return 4;
  } catch (const ConfigError& e) {
    // Unsupported option combinations (e.g. --shards with --delay sync, or
    // --lean-clocks under `check`) reject with a one-line remedy, exit 2.
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}

/// The trace-writing half of `run` (and the legacy form): the sweep merges
/// snapshots but keeps no raw per-run trace, so re-run the base point
/// (first seed) once with the trace ring enabled.
int write_trace(const analysis::OccupancyConfig& base, const CliOptions& opt) {
  analysis::OccupancyConfig traced = base;
  traced.trace_capacity = opt.trace_cap;
  try {
    const analysis::OccupancyRunResult run =
        analysis::run_occupancy_experiment(traced);
    if (trace_is_stdout(opt)) {
      std::fputs(analysis::trace_jsonl(run.trace).c_str(), stdout);
      std::fflush(stdout);
      std::fprintf(stderr, "psn_cli: wrote %zu trace records to stdout\n",
                   run.trace.size());
    } else {
      analysis::write_trace_jsonl(run.trace, opt.trace);
      std::printf("\nwrote %s (%zu records%s)\n", opt.trace.c_str(),
                  run.trace.size(),
                  run.trace_evicted > 0 ? ", ring overflowed — oldest evicted"
                                        : "");
    }
    if (run.trace_evicted > 0) {
      std::fprintf(stderr,
                   "psn_cli: trace ring evicted %zu records; rerun with "
                   "--trace-cap > %zu for a complete trace\n",
                   run.trace_evicted, opt.trace_cap);
    }
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_run(const CliOptions& opt, bool legacy) {
  const analysis::OccupancyConfig cfg = occupancy_config_of(opt);
  std::FILE* human = trace_is_stdout(opt) ? stderr : stdout;
  print_header(human, opt, cfg);

  analysis::SweepResult result;
  try {
    result = analysis::sweep(cfg)
                 .replications(opt.reps)
                 .threads(opt.threads)
                 .run();
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 2;
  }

  Table table({"detector", "occurrences", "TP", "FP", "FN", "borderline",
               "recall", "recall w/ bin", "precision", "belief acc"});
  for (const auto& [name, outcome] : result.points.front().detectors) {
    table.row()
        .cell(name)
        .cell(outcome.score.oracle_occurrences)
        .cell(outcome.score.true_positives)
        .cell(outcome.score.false_positives)
        .cell(outcome.score.false_negatives)
        .cell(outcome.score.borderline_detections)
        .cell(outcome.score.recall(), 3)
        .cell(outcome.score.recall_with_borderline(), 3)
        .cell(outcome.score.precision(), 3)
        .cell(outcome.belief_accuracy.mean(), 4);
  }
  std::fprintf(human, "%s", table.ascii().c_str());
  if (!opt.csv.empty()) {
    table.write_csv(opt.csv);
    std::fprintf(human, "\nwrote %s\n", opt.csv.c_str());
  }

  if (opt.metrics) {
    std::fprintf(human, "\nmetrics (merged over %zu run%s):\n", result.runs,
                 result.runs == 1 ? "" : "s");
    std::fprintf(human, "%s",
                 result.points.front().metrics.table().ascii().c_str());
  }

  if (legacy && opt.check) {
    const int code = run_check(cfg, opt);
    if (code != 0) return code;
  }
  if (!opt.trace.empty()) {
    const int code = write_trace(cfg, opt);
    if (code != 0) return code;
  }
  return 0;
}

int cmd_check(const CliOptions& opt) {
  const analysis::OccupancyConfig cfg = occupancy_config_of(opt);
  print_header(stdout, opt, cfg);
  return run_check(cfg, opt);
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::SoakServerConfig cfg;
  std::string listen;
  std::size_t max_streams = 64;
  std::size_t max_buffer = std::size_t{1} << 16;
  double idle_timeout_secs = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help" || flag == "-h") print_usage_and_exit();
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) usage_error("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--procs") {
      const long long n = std::atoll(value().c_str());
      if (n < 0) usage_error("--procs must be >= 0");
      cfg.num_processes = static_cast<std::size_t>(n);
    } else if (flag == "--retention") {
      const long long ms = std::atoll(value().c_str());
      if (ms <= 0) usage_error("--retention must be > 0 ms");
      cfg.send_retention = Duration::millis(ms);
    } else if (flag == "--validity") {
      const long long ms = std::atoll(value().c_str());
      if (ms < 0) usage_error("--validity must be >= 0");
      if (ms > 0) cfg.validity_horizon.lifetime = Duration::millis(ms);
    } else if (flag == "--metrics-every") {
      cfg.metrics_every =
          static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--lenient") {
      cfg.lenient = true;
    } else if (flag == "--listen") {
      listen = value();
      if (listen.empty()) usage_error("--listen needs a port or unix path");
    } else if (flag == "--max-streams") {
      const long long n = std::atoll(value().c_str());
      if (n <= 0) usage_error("--max-streams must be > 0");
      max_streams = static_cast<std::size_t>(n);
    } else if (flag == "--max-buffer") {
      const long long n = std::atoll(value().c_str());
      if (n <= 0) usage_error("--max-buffer must be > 0 bytes");
      max_buffer = static_cast<std::size_t>(n);
    } else if (flag == "--idle-timeout") {
      idle_timeout_secs = std::atof(value().c_str());
      if (idle_timeout_secs <= 0) usage_error("--idle-timeout must be > 0 s");
    } else {
      usage_error("unknown flag " + flag + " for serve");
    }
  }
  if (idle_timeout_secs > 0 && listen.empty()) {
    usage_error("--idle-timeout needs --listen (stdin mode has one stream)");
  }
  if (!listen.empty()) {
    serve::ListenerConfig listener_cfg;
    listener_cfg.listen = listen;
    listener_cfg.max_streams = max_streams;
    listener_cfg.session = cfg;
    listener_cfg.max_line_bytes = max_buffer;
    listener_cfg.idle_timeout_ms =
        static_cast<std::int64_t>(idle_timeout_secs * 1000.0);
    try {
      serve::Listener listener(listener_cfg, std::cout);
      listener.open();
      if (listener.port() != 0) {
        std::fprintf(stderr, "psn_cli: serving on 127.0.0.1:%u\n",
                     listener.port());
      } else {
        std::fprintf(stderr, "psn_cli: serving on %s\n", listen.c_str());
      }
      return listener.run();
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "psn_cli: %s\n", e.what());
      return 2;
    }
  }
  serve::SoakServer server(cfg, std::cout);
  const serve::SoakReport report = server.run(std::cin);
  return report.exit_code;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // A long-running `psn_cli serve` must survive its downstream consumer
  // disconnecting (closed pipe, vanished socket peer): writes then fail
  // with EPIPE and tear down the affected session, never the process.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "run") {
    args.erase(args.begin());
    return cmd_run(parse_cli(args, Command::kRun), /*legacy=*/false);
  }
  if (!args.empty() && args[0] == "check") {
    args.erase(args.begin());
    return cmd_check(parse_cli(args, Command::kCheck));
  }
  if (!args.empty() && args[0] == "serve") {
    args.erase(args.begin());
    return cmd_serve(args);
  }
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
    print_usage_and_exit();
  }
  if (!args.empty()) {
    std::fprintf(stderr,
                 "psn_cli: flat-flag invocation is deprecated; use "
                 "`psn_cli run ...`, `psn_cli check ...`, or "
                 "`psn_cli serve ...` (this alias keeps working for now)\n");
  }
  return cmd_run(parse_cli(args, Command::kLegacy), /*legacy=*/true);
}
