// psn_cli — command-line driver for the simulation testbed: run any built-in
// scenario under any time model configuration and get the per-detector
// scorecard, optionally as CSV for plotting.
//
// Usage:
//   psn_cli [options]
//     --scenario hall|office|hospital   (default hall)
//     --doors N          door/sensor count for hall        (default 4)
//     --capacity N       hall capacity threshold           (default 200)
//     --rate R           world events per second           (default 20)
//     --delta MS         delay bound Delta in ms           (default 100)
//     --delay uniform|fixed|exp|sync    delay model        (default uniform)
//     --eps US           sync-clock epsilon in us          (default 100)
//     --loss P           per-transmission loss prob        (default 0)
//     --seconds S        horizon                           (default 60)
//     --seed N           RNG seed                          (default 1)
//     --reps N           replications (seed, seed+1, ...)  (default 1)
//     --threads N        sweep worker threads, 0 = all hardware threads
//     --csv PATH         also write the scorecard as CSV
//     --mode scalar|vector|physical     wire clock mode     (default vector)
//     --metrics          print the merged metric snapshot table
//     --trace PATH       write a JSONL event trace of one run (seed = --seed)
//     --trace-cap N      trace ring capacity in records     (default 1000000)
//     --check            replay one run (seed = --seed) through the
//                        causality & clock-contract checker and the Δ-race
//                        audit; exit 1 on any violation
//
// Examples:
//   psn_cli --scenario hall --doors 8 --delta 250 --reps 10
//   psn_cli --delay sync --delta 0        # the Δ=0 collapse
//   psn_cli --loss 0.3 --seconds 120 --csv /tmp/lossy.csv
//   psn_cli --mode scalar --metrics       # E7-style per-mode byte accounting
//   psn_cli --trace /tmp/run.jsonl        # sense/send/deliver/... event log
//   psn_cli --check --mode scalar         # clock-contract replay, CI-style

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace {

using namespace psn;

struct CliOptions {
  std::string scenario = "hall";
  std::size_t doors = 4;
  int capacity = 200;
  double rate = 20.0;
  std::int64_t delta_ms = 100;
  std::string delay = "uniform";
  std::int64_t eps_us = 100;
  double loss = 0.0;
  std::int64_t seconds = 60;
  std::uint64_t seed = 1;
  std::size_t reps = 1;
  unsigned threads = 0;  // 0 = one worker per hardware thread
  std::string csv;
  std::string mode = "vector";
  bool metrics = false;
  std::string trace;
  std::size_t trace_cap = 1000000;
  bool check = false;
};

[[noreturn]] void usage_error(const std::string& why) {
  std::fprintf(stderr, "psn_cli: %s (run with --help for usage)\n",
               why.c_str());
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: psn_cli [--scenario hall|office|hospital] [--doors N]\n"
          "               [--capacity N] [--rate R] [--delta MS]\n"
          "               [--delay uniform|fixed|exp|sync] [--eps US]\n"
          "               [--loss P] [--seconds S] [--seed N] [--reps N]\n"
          "               [--threads N] [--csv PATH]\n"
          "               [--mode scalar|vector|physical] [--metrics]\n"
          "               [--trace PATH] [--trace-cap N] [--check]\n");
      std::exit(0);
    }
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--scenario") {
      opt.scenario = value();
    } else if (flag == "--doors") {
      opt.doors = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--capacity") {
      opt.capacity = std::atoi(value().c_str());
    } else if (flag == "--rate") {
      opt.rate = std::atof(value().c_str());
    } else if (flag == "--delta") {
      opt.delta_ms = std::atoll(value().c_str());
    } else if (flag == "--delay") {
      opt.delay = value();
    } else if (flag == "--eps") {
      opt.eps_us = std::atoll(value().c_str());
    } else if (flag == "--loss") {
      opt.loss = std::atof(value().c_str());
    } else if (flag == "--seconds") {
      opt.seconds = std::atoll(value().c_str());
    } else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (flag == "--reps") {
      opt.reps = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--threads") {
      const int threads = std::atoi(value().c_str());
      if (threads < 0) usage_error("--threads must be >= 0");
      opt.threads = static_cast<unsigned>(threads);
    } else if (flag == "--csv") {
      opt.csv = value();
    } else if (flag == "--mode") {
      opt.mode = value();
    } else if (flag == "--metrics") {
      opt.metrics = true;
    } else if (flag == "--trace") {
      opt.trace = value();
    } else if (flag == "--trace-cap") {
      const long long cap = std::atoll(value().c_str());
      if (cap <= 0) usage_error("--trace-cap must be > 0");
      opt.trace_cap = static_cast<std::size_t>(cap);
    } else if (flag == "--check") {
      opt.check = true;
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  if (opt.doors == 0 || opt.reps == 0 || opt.seconds <= 0) {
    usage_error("doors, reps, and seconds must be positive");
  }
  return opt;
}

core::DelayKind delay_kind_of(const std::string& name) {
  if (name == "uniform") return core::DelayKind::kUniformBounded;
  if (name == "fixed") return core::DelayKind::kFixed;
  if (name == "exp") return core::DelayKind::kExponential;
  if (name == "sync") return core::DelayKind::kSynchronous;
  usage_error("unknown delay model '" + name + "'");
}

net::ClockMode clock_mode_of(const std::string& name) {
  if (name == "scalar") return net::ClockMode::kScalarStrobe;
  if (name == "vector") return net::ClockMode::kVectorStrobe;
  if (name == "physical") return net::ClockMode::kPhysical;
  usage_error("unknown clock mode '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_cli(argc, argv);

  // Every scenario reduces to the occupancy harness with different
  // parameters; office/hospital presets adjust rate/capacity flavor.
  analysis::OccupancyConfig cfg;
  cfg.doors = opt.doors;
  cfg.capacity = opt.capacity;
  cfg.movement_rate = opt.rate;
  cfg.delay_kind = delay_kind_of(opt.delay);
  cfg.delta = Duration::millis(opt.delta_ms);
  cfg.sync_epsilon = Duration::micros(opt.eps_us);
  cfg.loss_probability = opt.loss;
  cfg.horizon = Duration::seconds(opt.seconds);
  cfg.seed = opt.seed;
  cfg.clock_mode = clock_mode_of(opt.mode);
  if (opt.scenario == "office") {
    cfg.doors = std::max<std::size_t>(2, opt.doors);
    cfg.capacity = 5;  // small-room occupancy
    cfg.movement_rate = std::min(opt.rate, 2.0);
  } else if (opt.scenario == "hospital") {
    cfg.capacity = 30;
    cfg.movement_rate = std::min(opt.rate, 6.0);
  } else if (opt.scenario != "hall") {
    std::fprintf(stderr, "psn_cli: unknown scenario '%s'\n",
                 opt.scenario.c_str());
    return 2;
  }

  std::printf(
      "scenario=%s doors=%zu capacity=%d rate=%.1f/s delay=%s delta=%lldms "
      "eps=%lldus loss=%.2f horizon=%llds reps=%zu seed=%llu mode=%s\n\n",
      opt.scenario.c_str(), cfg.doors, cfg.capacity, cfg.movement_rate,
      opt.delay.c_str(), static_cast<long long>(opt.delta_ms),
      static_cast<long long>(opt.eps_us), opt.loss,
      static_cast<long long>(opt.seconds), opt.reps,
      static_cast<unsigned long long>(opt.seed),
      net::to_string(cfg.clock_mode));

  analysis::SweepResult result;
  try {
    result = analysis::sweep(cfg)
                 .replications(opt.reps)
                 .threads(opt.threads)
                 .run();
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "psn_cli: %s\n", e.what());
    return 2;
  }

  Table table({"detector", "occurrences", "TP", "FP", "FN", "borderline",
               "recall", "recall w/ bin", "precision", "belief acc"});
  for (const auto& [name, outcome] : result.points.front().detectors) {
    table.row()
        .cell(name)
        .cell(outcome.score.oracle_occurrences)
        .cell(outcome.score.true_positives)
        .cell(outcome.score.false_positives)
        .cell(outcome.score.false_negatives)
        .cell(outcome.score.borderline_detections)
        .cell(outcome.score.recall(), 3)
        .cell(outcome.score.recall_with_borderline(), 3)
        .cell(outcome.score.precision(), 3)
        .cell(outcome.belief_accuracy.mean(), 4);
  }
  std::printf("%s", table.ascii().c_str());
  if (!opt.csv.empty()) {
    table.write_csv(opt.csv);
    std::printf("\nwrote %s\n", opt.csv.c_str());
  }

  if (opt.metrics) {
    std::printf("\nmetrics (merged over %zu run%s):\n", result.runs,
                result.runs == 1 ? "" : "s");
    std::printf("%s",
                result.points.front().metrics.table().ascii().c_str());
  }

  if (opt.check) {
    // Re-run the base point (first seed) with the checker on; the sweep
    // merges snapshots and keeps no raw trace to replay.
    analysis::OccupancyConfig checked = cfg;
    checked.check = true;
    if (checked.trace_capacity == 0) checked.trace_capacity = opt.trace_cap;
    try {
      const analysis::OccupancyRunResult run =
          analysis::run_occupancy_experiment(checked);
      std::printf("\n%s", run.check->summary().c_str());
      if (!run.check->clean()) return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psn_cli: %s\n", e.what());
      return 1;
    }
  }

  if (!opt.trace.empty()) {
    // The sweep merges snapshots but keeps no raw per-run trace; re-run the
    // base point (first seed) once with the trace ring enabled.
    analysis::OccupancyConfig traced = cfg;
    traced.trace_capacity = opt.trace_cap;
    try {
      const analysis::OccupancyRunResult run =
          analysis::run_occupancy_experiment(traced);
      analysis::write_trace_jsonl(run.trace, opt.trace);
      std::printf("\nwrote %s (%zu records%s)\n", opt.trace.c_str(),
                  run.trace.size(),
                  run.trace_evicted > 0 ? ", ring overflowed — oldest evicted"
                                        : "");
      if (run.trace_evicted > 0) {
        std::fprintf(stderr,
                     "psn_cli: trace ring evicted %zu records; rerun with "
                     "--trace-cap > %zu for a complete trace\n",
                     run.trace_evicted, opt.trace_cap);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psn_cli: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
