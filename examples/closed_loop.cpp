// The full sense-and-respond loop of the paper's execution model (§2.2):
//
//   world event → sense (n) → strobe broadcast (s/r) → online detection at
//   P_0 → actuation command (s) → a-event at the actuator → world change →
//   sensed again ...
//
// A smart-office thermostat: whenever  temp > 30 && occupied  becomes true,
// the root commands P_1 to reset the thermostat to 26 C — *every* time
// (§3.3: "reset thermostat to 28 C each time ..."). The reset itself is a
// world event, gets sensed, and closes the loop live inside the simulation.
//
// Usage: closed_loop [seconds] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/online_monitor.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/temporal_logic.hpp"
#include "world/generators.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  const auto seconds = argc > 1 ? std::atoll(argv[1]) : 300;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 17;

  core::SystemConfig sys;
  sys.num_sensors = 2;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(seconds);
  sys.delay_kind = core::DelayKind::kUniformBounded;
  sys.delta = Duration::millis(60);
  core::PervasiveSystem system(sys);

  const auto room = system.world().create_object("server_room");
  system.world().object(room).set_attribute("temp", 26.0);
  const auto door = system.world().create_object("door");
  system.world().object(door).set_attribute("occupied", false);
  system.assign(room, "temp", 1);
  system.assign(door, "occupied", 2);

  // The environment: temperature drifts upward (heat load), occupancy
  // toggles randomly.
  world::AttributeDriver heat(
      system.world(), room, "temp",
      std::make_unique<world::PoissonArrivals>(2.0),
      std::make_unique<world::RandomWalkValue>(1.2, 20.0, 40.0),
      system.sim().rng_for("heat"));
  world::AttributeDriver people(
      system.world(), door, "occupied",
      std::make_unique<world::PoissonArrivals>(0.2),
      std::make_unique<world::ToggleValue>(),
      system.sim().rng_for("people"));

  core::ActuationRule rule;
  rule.on_rising_edge = true;
  rule.fire_on_borderline = true;  // err on the safe side (§5)
  rule.actuator = 1;
  rule.object = room;
  rule.attribute = "temp";
  rule.value = world::AttributeValue(26.0);
  rule.command = "reset_thermostat";

  core::OnlineMonitor monitor(
      system, core::parse_predicate("hot", "temp[1] > 30 && occupied[2]"),
      {rule});

  heat.start();
  people.start();
  system.run();

  std::printf("Closed loop over %lld s (Delta = %s):\n",
              static_cast<long long>(seconds), sys.delta.to_string().c_str());
  std::printf("  detections: %zu transitions (%zu rising)\n",
              monitor.detections().size(),
              (monitor.detections().size() + 1) / 2);
  std::printf("  thermostat resets commanded: %zu\n",
              monitor.actuations().size());

  const auto latencies = monitor.actuation_latencies();
  if (!latencies.empty()) {
    SampleSet s;
    for (const auto& d : latencies) s.add(d.to_seconds() * 1e3);
    std::printf(
        "  sense→actuate latency: p50 %.1f ms, p95 %.1f ms, max %.1f ms "
        "(2 message hops, Delta = 60 ms)\n",
        s.median(), s.percentile(95), s.max());
  }

  std::printf(
      "  final room temperature: %.1f C\n",
      system.world().object(room).attribute("temp").as_double());

  // Count how often the room was hot-and-occupied in ground truth vs how
  // long each episode lasted before the loop quenched it.
  const core::GroundTruthOracle oracle(
      core::parse_predicate("hot", "temp[1] > 30 && occupied[2]"),
      system.sensing());
  const auto truth = oracle.evaluate(system.timeline(), sys.sim.horizon);
  SampleSet episode_ms;
  for (const auto& occ : truth.occurrences) {
    episode_ms.add(occ.duration().to_seconds() * 1e3);
  }
  std::printf(
      "  hot episodes in ground truth: %zu, median duration %.0f ms — each\n"
      "  quenched by an actuation instead of persisting.\n",
      truth.occurrences.size(),
      episode_ms.empty() ? 0.0 : episode_ms.median());

  // Formal check of the control law as a metric-temporal-logic property
  // (paper §3.1.1.a.iv, *TL*-based specification):
  //    G ( hot-onset  →  F[0, 500 ms] reset-applied ).
  const SimTime horizon = sys.sim.horizon;
  std::vector<core::Occurrence> onset_pulses;
  for (const auto& occ : truth.occurrences) {
    onset_pulses.push_back({occ.begin, occ.begin + Duration::millis(1)});
  }
  std::vector<core::Occurrence> reset_pulses;
  for (const auto& e : *system.sensor_executions()[0]) {
    if (e.type == core::EventType::kActuate) {
      reset_pulses.push_back(
          {e.clocks.true_time, e.clocks.true_time + Duration::millis(1)});
    }
  }
  const auto onset =
      core::mtl::BoolSignal::from_intervals(std::move(onset_pulses), horizon);
  const auto reset =
      core::mtl::BoolSignal::from_intervals(std::move(reset_pulses), horizon);
  const bool spec_holds =
      core::mtl::responds_within(onset, reset, Duration::millis(500));
  std::printf(
      "\nMTL spec  G(hot-onset -> F[0,500ms] reset-applied):  %s\n",
      spec_holds ? "HOLDS" : "VIOLATED");
  return 0;
}
