// Wildlife monitoring in the wild — the setting where the paper argues
// strobe clocks beat physical clock synchronization outright (§3.3: "in the
// wild, remote terrain, nature monitoring, events are often rare compared
// to Delta ... nor may we be able to afford the associated cost of
// synchronized physical clocks").
//
// A zebra with an embedded tag (the paper's own example of a dual-role
// entity, §2.1) wanders a field by random waypoint; three fixed sensors
// with overlapping ranges sense its presence. Predicates:
//   sighted:   count-style   sum(near_zebra) >= 1    (somewhere in coverage)
//   localized: overlap       near_zebra[1] && near_zebra[2]
// detected with vector strobe clocks only — no clock synchronization runs.
//
// Usage: wildlife_tracking [seconds] [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "core/detectors.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/proximity.hpp"
#include "core/system.hpp"
#include "world/mobility.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  const auto seconds = argc > 1 ? std::atoll(argv[1]) : 600;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 21;

  core::SystemConfig sys;
  sys.num_sensors = 3;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(seconds);
  sys.delay_kind = core::DelayKind::kUniformBounded;
  sys.delta = Duration::millis(400);  // wilderness radios: slow, duty-cycled
  core::PervasiveSystem system(sys);

  core::ProximityField field(
      system, {{1, {20.0, 30.0}, 18.0},
               {2, {45.0, 30.0}, 18.0},
               {3, {70.0, 30.0}, 18.0}});

  const auto zebra = system.world().create_object("zebra", {45.0, 30.0});
  field.track(zebra);

  world::RandomWaypointConfig walk;
  walk.width = 90.0;
  walk.height = 60.0;
  walk.speed_min = 0.5;
  walk.speed_max = 1.8;  // zebra amble — slow relative to Delta, as §3.3 wants
  world::RandomWaypointMobility mobility(system.world(), zebra, walk,
                                         system.sim().rng_for("zebra"));
  mobility.start();
  system.run();

  std::printf(
      "Wildlife tracking: zebra walked %.0f m over %lld s "
      "(%zu waypoints); Delta = %s\n\n",
      mobility.distance_travelled(), static_cast<long long>(seconds),
      mobility.waypoints_visited(), sys.delta.to_string().c_str());

  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = sys.delta * 2 + Duration::millis(1);

  for (const char* text :
       {"sum(near_zebra) >= 1", "near_zebra[1] && near_zebra[2]"}) {
    const auto phi = core::parse_predicate(text, text);
    const core::GroundTruthOracle oracle(phi, system.sensing());
    const auto truth = oracle.evaluate(system.timeline(), sys.sim.horizon);
    std::printf("predicate %-32s: %zu true episodes (%.1f%% of time)\n", text,
                truth.occurrences.size(), 100.0 * truth.fraction_true);

    Table table({"detector", "TP", "FP", "FN", "recall", "precision"});
    for (const auto& det : core::all_online_detectors()) {
      const auto detections = det->run(system.log(), phi);
      const auto score =
          analysis::score_detections(truth, detections, score_cfg);
      table.row()
          .cell(det->name())
          .cell(score.true_positives)
          .cell(score.false_positives)
          .cell(score.false_negatives)
          .cell(score.recall(), 3)
          .cell(score.precision(), 3);
    }
    std::printf("%s\n", table.ascii().c_str());
  }

  std::printf(
      "Even with Delta = 400 ms, zone transitions are seconds apart (slow\n"
      "lifeform movement), so strobe clocks detect essentially perfectly —\n"
      "the paper's viability condition in action, with zero sync traffic.\n");
  return 0;
}
