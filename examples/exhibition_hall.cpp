// The paper's Section 5 scenario in full: a convention-center exhibition
// hall with d entry-cum-exit doors, RFID badge sensors, fire-code capacity
// of 200, and the global predicate
//
//     phi  =  sum_k (x_k - y_k)  >  200
//
// detected under the *Instantaneously* modality using logical strobe clocks
// (no synchronized physical clocks), including the borderline bin: races
// within Delta are flagged, and the application treats borderline entries as
// positives "to err on the safe side".
//
// Usage: exhibition_hall [doors] [delta_ms] [seconds] [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/experiments.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  analysis::OccupancyConfig config;
  config.doors = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  config.capacity = 200;
  config.movement_rate = 25.0;
  config.delta =
      Duration::millis(argc > 2 ? std::atoll(argv[2]) : 150);
  config.horizon = Duration::seconds(argc > 3 ? std::atoll(argv[3]) : 120);
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 7;

  std::printf(
      "Exhibition hall: %zu doors, capacity %d, %.0f movements/s, "
      "Delta=%s, horizon=%s, seed=%llu\n\n",
      config.doors, config.capacity, config.movement_rate,
      config.delta.to_string().c_str(), config.horizon.to_string().c_str(),
      static_cast<unsigned long long>(config.seed));

  const auto run = analysis::run_occupancy_experiment(config);

  std::printf("ground truth: %zu threshold crossings, door events: %zu\n",
              run.oracle.occurrences.size(), run.world_events);
  std::printf("strobe broadcasts delivered to root: %zu  (end-to-end Delta bound %s)\n\n",
              run.observed_updates, run.delta_bound.to_string().c_str());

  Table table({"detector", "TP", "FP", "FN", "FN in borderline bin",
               "recall", "recall w/ borderline", "precision",
               "median latency (ms)"});
  for (const auto& out : run.outcomes) {
    table.row()
        .cell(out.detector)
        .cell(out.score.true_positives)
        .cell(out.score.false_positives)
        .cell(out.score.false_negatives)
        .cell(out.score.fn_covered_by_borderline)
        .cell(out.score.recall(), 3)
        .cell(out.score.recall_with_borderline(), 3)
        .cell(out.score.precision(), 3)
        .cell(out.score.latency_s.empty()
                  ? 0.0
                  : out.score.latency_s.median() * 1e3,
              4);
  }
  std::printf("%s\n", table.ascii().c_str());

  // The safety policy from the paper: every borderline entry is treated as a
  // positive — entry to the hall is paused. Report what that policy costs.
  const auto& vec = run.outcome("strobe-vector");
  std::printf(
      "Safety policy (treat borderline as positive): %zu extra pauses beyond\n"
      "the %zu confirmed detections; %zu of %zu missed crossings recovered.\n",
      vec.score.borderline_unmatched, vec.score.true_positives,
      vec.score.fn_covered_by_borderline, vec.score.false_negatives);

  // Message-cost contrast (paper §4.2.2): scalar strobes are O(1) per
  // message, vector strobes O(n).
  const auto& strobes = run.message_stats.of(net::MessageKind::kStrobe);
  std::printf(
      "\nStrobe traffic: %zu transmissions, %zu bytes in vector mode "
      "(O(n) stamps).\n",
      strobes.sent, strobes.bytes_sent);
  return 0;
}
