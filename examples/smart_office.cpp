// Smart-office scenario (paper §3.1.1.b.i): "a person enters a room and
// temp > 30°C — temperature can be automatically lowered depending on the
// rule base."
//
// The temperature is sensed by one process and the motion/occupancy by
// another, so the predicate
//
//     phi  =  temp[1] > 30  &&  occupied[2]
//
// is a *conjunctive* predicate across two processes. This example detects it
// three ways:
//   1. the online strobe detectors (single-time-axis simulation),
//   2. Garg–Waldecker weak-conjunctive detection over vector stamps, and
//   3. Cooper–Marzullo Possibly/Definitely over the strobe-induced lattice —
//      the modalities of [17] that the paper discusses in §3.1.1.b.
//
// Usage: smart_office [seconds] [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/scoring.hpp"
#include "common/table.hpp"
#include "core/conjunctive.hpp"
#include "core/detectors.hpp"
#include "core/lattice.hpp"
#include "core/oracle.hpp"
#include "core/predicate_parser.hpp"
#include "core/system.hpp"
#include "world/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace psn;

  const auto seconds = argc > 1 ? std::atoll(argv[1]) : 60;
  const auto seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  core::SystemConfig sys;
  sys.num_sensors = 2;
  sys.sim.seed = seed;
  sys.sim.horizon = SimTime::zero() + Duration::seconds(seconds);
  sys.delay_kind = core::DelayKind::kUniformBounded;
  sys.delta = Duration::millis(100);
  core::PervasiveSystem system(sys);

  world::SmartOfficeConfig office_cfg;
  office_cfg.rooms = 1;
  office_cfg.temp_change_rate = 1.0;
  office_cfg.motion_rate = 0.3;
  world::SmartOffice office(system.world(), office_cfg,
                            system.sim().rng_for("office"));

  // Temperature sensor is P_1, motion sensor is P_2 — two different nodes
  // watching the same room.
  system.assign(office.room_object(0), "temp", 1);
  system.assign(office.room_object(0), "occupied", 2);

  const core::Predicate phi =
      core::parse_predicate("hot_and_occupied", "temp[1] > 30 && occupied[2]");
  std::printf("predicate: %s  (conjunctive: %s)\n\n",
              phi.expr()->to_string().c_str(),
              phi.is_conjunctive() ? "yes" : "no");

  office.start();
  system.run();

  const core::GroundTruthOracle oracle(phi, system.sensing());
  const core::OracleResult truth =
      oracle.evaluate(system.timeline(), sys.sim.horizon);
  std::printf("ground truth: %zu occurrences, %.1f%% of the time\n\n",
              truth.occurrences.size(), 100.0 * truth.fraction_true);

  // --- 1. online strobe detectors ---
  analysis::ScoreConfig score_cfg;
  score_cfg.tolerance = sys.delta * 2 + Duration::millis(1);
  Table online({"detector", "TP", "FP", "FN", "borderline", "recall"});
  for (const auto& det : core::all_online_detectors()) {
    const auto detections = det->run(system.log(), phi);
    const auto score = analysis::score_detections(truth, detections, score_cfg);
    online.row()
        .cell(det->name())
        .cell(score.true_positives)
        .cell(score.false_positives)
        .cell(score.false_negatives)
        .cell(score.borderline_detections)
        .cell(score.recall(), 3);
  }
  std::printf("online detection (single time axis via strobes):\n%s\n",
              online.ascii().c_str());

  // --- 2. Garg–Waldecker weak conjunctive over vector stamps ---
  const auto view = core::ExecutionView::from_strobe_stamps(system);
  core::WeakConjunctiveDetector gw;
  const auto matches = gw.run(view, phi);
  std::printf("Garg-Waldecker weak-conjunctive matches: %zu "
              "(vs %zu true occurrences)\n",
              matches.size(), truth.occurrences.size());
  for (std::size_t i = 0; i < matches.size() && i < 5; ++i) {
    std::printf("  match %zu: window begins at %s\n", i + 1,
                matches[i].window_begin.to_string().c_str());
  }

  // --- 3. Possibly / Definitely over the strobe-induced lattice ---
  const auto stats = core::lattice::count_consistent_cuts(view);
  std::printf(
      "\nstrobe-induced lattice: %llu consistent global states "
      "(unconstrained: %.3g) over %llu events\n",
      static_cast<unsigned long long>(stats.consistent_cuts),
      core::lattice::unconstrained_cuts(view),
      static_cast<unsigned long long>(stats.total_events));
  std::printf("Possibly(phi)   = %s\n",
              core::lattice::possibly(view, phi) ? "true" : "false");
  std::printf("Definitely(phi) = %s\n",
              core::lattice::definitely(view, phi) ? "true" : "false");

  // Rule-base reaction (paper: "temperature can be automatically lowered"):
  // demonstrate the actuate (a) event on the world plane.
  if (!matches.empty()) {
    system.sensor(1).actuate(system.world(), office.room_object(0), "temp",
                             world::AttributeValue(28.0));
    std::printf("\nactuated: thermostat reset to 28 C (a-event recorded at P_1)\n");
  }
  return 0;
}
