// checker_fuzz — randomized occupancy configurations replayed through the
// causality & clock-contract checker (ROADMAP: "fuzz the simulator with the
// checker as oracle"). Every round draws a config from the supported grid —
// delay model and Δ, loss probability, duty cycling, clock mode, validity
// horizon, door count, movement rate — runs the full occupancy experiment
// with config.check on, and demands a clean verdict: the simulator must
// produce executions the checker certifies, for EVERY reachable
// configuration, not just the ones experiments happen to exercise.
//
// Determinism and replay: all randomness derives from --master-seed via
// splitmix64, so a CI failure is reproducible locally with the seed printed
// in the log — rerun with --master-seed <S> --only-round <K>. The nightly
// workflow passes its run id as the master seed, so every night covers a
// fresh slice of the grid and every failure names its replay command.
//
// Exit codes: 0 all rounds clean, 1 a round failed (non-clean verdict or
// unexpected exception), 2 usage error.
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "analysis/experiments.hpp"
#include "check/check.hpp"
#include "common/sim_time.hpp"
#include "core/system.hpp"
#include "net/duty_cycle.hpp"
#include "net/transport.hpp"
#include "sim/fault.hpp"

namespace {

/// splitmix64: the per-round seed stream. Tiny, well-mixed, and stable
/// across platforms — the replay contract depends on all three.
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

psn::analysis::OccupancyConfig draw_config(std::uint64_t round_seed) {
  using psn::Duration;
  std::uint64_t s = round_seed;
  psn::analysis::OccupancyConfig cfg;

  cfg.doors = 1 + splitmix(s) % 6;
  cfg.capacity = static_cast<int>(50 + splitmix(s) % 300);
  cfg.movement_rate = 5.0 + static_cast<double>(splitmix(s) % 400) / 10.0;

  switch (splitmix(s) % 4) {
    case 0: cfg.delay_kind = psn::core::DelayKind::kSynchronous; break;
    case 1: cfg.delay_kind = psn::core::DelayKind::kFixed; break;
    case 2: cfg.delay_kind = psn::core::DelayKind::kUniformBounded; break;
    default: cfg.delay_kind = psn::core::DelayKind::kExponential; break;
  }
  cfg.delta = Duration::millis(static_cast<std::int64_t>(10 + splitmix(s) % 290));
  cfg.sync_epsilon =
      Duration::micros(static_cast<std::int64_t>(10 + splitmix(s) % 990));

  switch (splitmix(s) % 4) {
    case 0: cfg.loss_probability = 0.0; break;
    case 1: cfg.loss_probability = 0.05; break;
    case 2: cfg.loss_probability = 0.2; break;
    default: cfg.loss_probability = 0.5; break;
  }

  switch (splitmix(s) % 3) {
    case 0: break;  // always-on radios
    case 1: {
      psn::net::DutyCycle dc;
      dc.period = Duration::millis(static_cast<std::int64_t>(50 + splitmix(s) % 450));
      dc.window = Duration::millis(
          static_cast<std::int64_t>(
              5 + splitmix(s) % static_cast<std::uint64_t>(
                      dc.period.count_nanos() / 1'000'000 - 5)));
      cfg.duty_cycle = dc;
      cfg.duty_phases_aligned = true;
      break;
    }
    default: {
      psn::net::DutyCycle dc;
      dc.period = Duration::millis(200);
      dc.window = Duration::millis(static_cast<std::int64_t>(10 + splitmix(s) % 90));
      cfg.duty_cycle = dc;
      cfg.duty_phases_aligned = false;
      break;
    }
  }

  switch (splitmix(s) % 3) {
    case 0: cfg.clock_mode = psn::net::ClockMode::kScalarStrobe; break;
    case 1: cfg.clock_mode = psn::net::ClockMode::kVectorStrobe; break;
    default: cfg.clock_mode = psn::net::ClockMode::kPhysical; break;
  }

  if (splitmix(s) % 2 == 0) {
    cfg.validity_horizon.lifetime =
        Duration::millis(static_cast<std::int64_t>(50 + splitmix(s) % 450));
  }

  cfg.horizon = Duration::seconds(static_cast<std::int64_t>(4 + splitmix(s) % 8));

  // Gilbert–Elliott burst loss, 1 round in 4 (the fuzzer runs unsharded, so
  // the per-transmission channel state is legal here).
  if (splitmix(s) % 4 == 0) {
    psn::core::SystemConfig::GilbertElliottParams ge;
    ge.p_good_to_bad = 0.01 + static_cast<double>(splitmix(s) % 10) / 100.0;
    ge.p_bad_to_good = 0.2 + static_cast<double>(splitmix(s) % 50) / 100.0;
    ge.loss_in_good = static_cast<double>(splitmix(s) % 5) / 100.0;
    ge.loss_in_bad = 0.3 + static_cast<double>(splitmix(s) % 60) / 100.0;
    cfg.gilbert_elliott = ge;
  }

  // Fault plans (DESIGN.md §15): crash/partition/drift windows inside the
  // horizon. At most one window per kind keeps the plan trivially valid (no
  // same-pid/same-edge overlaps); crashed pids stay in [1, doors] (process 0
  // is mains-powered), cut edges hang off the root so they exist in every
  // topology. The checker-clean gate then covers the whole fault machinery:
  // pairing, down-activity, drift compensation, and the fault-aware audit.
  const std::uint64_t fault_draw = splitmix(s) % 4;
  const std::int64_t horizon_s = cfg.horizon.count_nanos() / 1'000'000'000;
  const auto draw_pid = [&]() {
    return static_cast<psn::ProcessId>(1 + splitmix(s) % cfg.doors);
  };
  const auto draw_window = [&](psn::SimTime& begin, psn::SimTime& end) {
    const std::int64_t b = 1 + static_cast<std::int64_t>(
                                   splitmix(s) %
                                   static_cast<std::uint64_t>(horizon_s));
    const std::int64_t d = 1 + static_cast<std::int64_t>(splitmix(s) % 3);
    begin = psn::SimTime::zero() + Duration::seconds(b);
    end = begin + Duration::seconds(d);
  };
  if (fault_draw & 1) {
    psn::sim::CrashWindow w;
    w.pid = draw_pid();
    draw_window(w.begin, w.end);
    cfg.faults.crashes.push_back(w);
  }
  if (fault_draw & 2) {
    psn::sim::PartitionWindow w;
    w.a = 0;
    w.b = draw_pid();
    draw_window(w.begin, w.end);
    cfg.faults.partitions.push_back(w);
  }
  if (fault_draw != 0 && splitmix(s) % 2 == 0) {
    psn::sim::ClockFaultWindow w;
    w.pid = draw_pid();
    draw_window(w.begin, w.end);
    w.extra_drift_ppm = 50 + static_cast<std::int64_t>(splitmix(s) % 400);
    cfg.faults.clock_faults.push_back(w);
  }

  cfg.seed = splitmix(s);
  cfg.check = true;
  return cfg;
}

/// The fuzz oracle. A clean verdict always passes. One contract is excused,
/// narrowly: "validity-horizon" counts observations delivered after their
/// Kopetz-Steiner lifetime lapsed — with a bounded horizon drawn against
/// duty-cycled radios, lossy links, or unbounded delay tails, staleness is
/// the *environment* breaking the deployment's freshness claim, which the
/// contract exists to surface; it is not a simulator defect. Every other
/// contract (causality, clock replays, soundness, epsilon/drift envelopes)
/// must be spotless, and a partial-window verdict always fails: the ring
/// was sized for the horizon, so eviction means the harness itself is wrong.
bool acceptable(const psn::check::CheckReport& report,
                const psn::analysis::OccupancyConfig& cfg) {
  if (report.clean()) return true;
  if (report.verdict != psn::check::Verdict::kViolations) return false;
  for (const auto& contract : report.contracts) {
    if (contract.violations_total == 0) continue;
    if (contract.contract == "validity-horizon" &&
        cfg.validity_horizon.bounded()) {
      continue;
    }
    return false;
  }
  return true;
}

void describe(std::uint64_t round, const psn::analysis::OccupancyConfig& c) {
  std::cout << "round " << round << ": doors=" << c.doors
            << " rate=" << c.movement_rate
            << " delay_kind=" << static_cast<int>(c.delay_kind)
            << " delta_ms=" << c.delta.to_millis()
            << " loss=" << c.loss_probability
            << " duty=" << (c.duty_cycle ? "on" : "off")
            << " mode=" << psn::net::to_string(c.clock_mode)
            << " validity=" << (c.validity_horizon.bounded() ? "bounded" : "inf")
            << " ge=" << (c.gilbert_elliott ? "on" : "off")
            << " faults=" << c.faults.crashes.size() << "c/"
            << c.faults.partitions.size() << "p/"
            << c.faults.clock_faults.size() << "d"
            << " horizon_s=" << c.horizon.to_seconds() << " seed=" << c.seed
            << std::endl;  // flush: a crash must not eat the replay info
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t rounds = 20;
  std::uint64_t master_seed = 1;
  std::int64_t only_round = -1;
  for (int a = 1; a < argc; a++) {
    const std::string arg = argv[a];
    const auto need = [&](const char* flag) -> const char* {
      if (a + 1 >= argc) {
        std::cerr << "checker_fuzz: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--rounds") {
      rounds = std::strtoull(need("--rounds"), nullptr, 10);
    } else if (arg == "--master-seed") {
      master_seed = std::strtoull(need("--master-seed"), nullptr, 10);
    } else if (arg == "--only-round") {
      only_round = std::strtoll(need("--only-round"), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: checker_fuzz [--rounds N] [--master-seed S] "
                   "[--only-round K]\n";
      return 0;
    } else {
      std::cerr << "checker_fuzz: unknown argument " << arg << "\n";
      return 2;
    }
  }

  std::cout << "checker_fuzz: master-seed=" << master_seed
            << " rounds=" << rounds << "\n";
  std::uint64_t failures = 0;
  std::uint64_t ran = 0;
  std::uint64_t stream = master_seed;
  for (std::uint64_t r = 0; r < rounds; r++) {
    const std::uint64_t round_seed = splitmix(stream);
    if (only_round >= 0 && r != static_cast<std::uint64_t>(only_round)) {
      continue;
    }
    const psn::analysis::OccupancyConfig cfg = draw_config(round_seed);
    describe(r, cfg);
    ran++;
    try {
      const psn::analysis::OccupancyRunResult result =
          psn::analysis::run_occupancy_experiment(cfg);
      if (!result.check.has_value()) {
        std::cout << "round " << r << " FAILED: no check report produced\n";
        failures++;
        continue;
      }
      if (!acceptable(*result.check, cfg)) {
        std::cout << "round " << r << " FAILED: verdict "
                  << psn::check::to_string(result.check->verdict) << "\n"
                  << result.check->summary() << "\n"
                  << "replay: checker_fuzz --master-seed " << master_seed
                  << " --only-round " << r << "\n";
        failures++;
      }
    } catch (const std::exception& e) {
      std::cout << "round " << r << " FAILED: exception: " << e.what() << "\n"
                << "replay: checker_fuzz --master-seed " << master_seed
                << " --only-round " << r << "\n";
      failures++;
    }
  }

  std::cout << "checker_fuzz: " << ran - failures << "/" << ran
            << " rounds clean\n";
  return failures == 0 ? 0 : 1;
}
