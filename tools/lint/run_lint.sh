#!/usr/bin/env bash
# Runs the project-specific static checks (psn_lint, DESIGN.md §13) over the
# library sources. Exit 0 = clean, 1 = findings, 2 = usage/build error.
#
#   tools/lint/run_lint.sh [build-dir]
#
# Builds psn_lint on demand (configuring with -DPSN_CUSTOM_LINT=ON into
# [build-dir], default build/) and scans every tracked .cpp/.hpp under src/.
# CI's custom-lint job is exactly this script.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
build_dir=${1:-"${repo_root}/build"}
cd "${repo_root}"

if [[ ! -x "${build_dir}/tools/lint/psn_lint" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" -DPSN_CUSTOM_LINT=ON >/dev/null
  cmake --build "${build_dir}" --target psn_lint -j >/dev/null
fi

if git -C "${repo_root}" rev-parse --git-dir >/dev/null 2>&1; then
  mapfile -t files < <(git -C "${repo_root}" ls-files 'src/*.cpp' 'src/*.hpp')
else
  mapfile -t files < <(find src -name '*.cpp' -o -name '*.hpp' | sort)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_lint.sh: no sources found under src/" >&2
  exit 2
fi

exec "${build_dir}/tools/lint/psn_lint" --root "${repo_root}" "${files[@]/#/${repo_root}/}"
