# psn_lint self-test (ctest -L lint): the planted-violation fixtures must
# produce byte-for-byte the findings in testdata/expected.txt (exit 1), and
# the clean fixture alone must produce nothing (exit 0). Run via
#   cmake -DPSN_LINT=<binary> -DFIXTURES=<testdata dir> -P selftest.cmake

set(BAD_FILES
  src/sim/bad_determinism.cpp
  src/sim/bad_hot_alloc.cpp
  src/sim/clean.cpp
  src/sim/fault_bad_order.cpp
  src/check/bad_range_for.cpp
  src/serve/bad_locale.cpp)

execute_process(
  COMMAND ${PSN_LINT} --root . ${BAD_FILES}
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE got
  RESULT_VARIABLE code)
if(NOT code EQUAL 1)
  message(FATAL_ERROR "psn_lint on violation fixtures: expected exit 1, "
                      "got ${code}\noutput:\n${got}")
endif()
file(READ ${FIXTURES}/expected.txt want)
if(NOT got STREQUAL want)
  message(FATAL_ERROR "psn_lint findings diverged from expected.txt.\n"
                      "--- got ---\n${got}\n--- want ---\n${want}")
endif()

execute_process(
  COMMAND ${PSN_LINT} --root . src/sim/clean.cpp
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE clean_out
  RESULT_VARIABLE clean_code)
if(NOT clean_code EQUAL 0 OR NOT clean_out STREQUAL "")
  message(FATAL_ERROR "psn_lint on the clean fixture: expected silent exit "
                      "0, got ${clean_code}\noutput:\n${clean_out}")
endif()

message(STATUS "psn_lint selftest passed")
