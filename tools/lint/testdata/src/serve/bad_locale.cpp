// Fixture: locale-sensitive float text on the wire path (mirrors src/serve/).
#include <cstdio>
#include <cstdlib>
#include <string>

double parse_value(const char* s) {
  double direct = std::strtod(s, nullptr);  // FLAG: strtod
  double loose = atof(s);                   // FLAG: atof
  return direct + loose;
}

int format_value(char* out, std::size_t n, double v) {
  return snprintf(out, n, "%.17g", v);  // FLAG: snprintf float formatting
}

double sanctioned(const char* s) {
  // The documented no-<charconv> fallback shim, locale-pinned by its caller.
  return std::strtod(s, nullptr);  // psn-lint: allow(psn-locale-safe-io)
}
