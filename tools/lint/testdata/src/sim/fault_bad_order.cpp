// Fixture: hash-order iteration on the fault layer (testdata mirrors
// src/sim/fault*, which is on the output-feeding ban list — fault-plan
// compilation orders trace records and partition transitions).
#include <unordered_map>
#include <utility>
#include <vector>

struct Window {
  long begin = 0;
  long end = 0;
};

struct Plan {
  std::unordered_map<unsigned, Window> crash_by_pid;
};

std::vector<std::pair<unsigned, long>> transitions_of(const Plan& plan) {
  std::vector<std::pair<unsigned, long>> out;
  for (const auto& [pid, w] : plan.crash_by_pid) {  // FLAG: emission order
    out.push_back({pid, w.begin});
    out.push_back({pid, w.end});
  }
  return out;
}
