// Fixture: every ambient-nondeterminism pattern psn-determinism must catch,
// interleaved with look-alikes it must NOT flag.
#include <chrono>
#include <cstdlib>
#include <ctime>

struct SimTime {
  explicit SimTime(long n) : nanos(n) {}
  long nanos;
};

struct Widget {
  long time(long x) { return x; }  // member named `time` — legal
  long clock() { return 7; }       // member named `clock` — legal
};

long ambient() {
  auto wall = std::chrono::system_clock::now();  // FLAG: system_clock
  long t = time(nullptr);                        // FLAG: time()
  long r = rand();                               // FLAG: rand()
  srand(42);                                     // FLAG: srand()
  const char* home = std::getenv("HOME");        // FLAG: getenv()
  return wall.time_since_epoch().count() + t + r + (home != nullptr);
}

long fine() {
  SimTime time(0);   // declaration shaped like a call — legal
  Widget w;
  long a = w.time(3);     // member call — legal
  long b = w.clock();     // member call — legal
  // Sanctioned wall-clock read for coarse progress logging only.
  long c = time(nullptr);  // psn-lint: allow(psn-determinism)
  return time.nanos + a + b + c;
}
