// Fixture: idiomatic hot-path code — every check must stay silent.
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#define PSN_HOT __attribute__((hot))

struct Rng {
  std::uint64_t s = 1;
  std::uint64_t next() { return s = s * 6364136223846793005ULL + 1; }
};

struct Calendar {
  std::deque<std::uint64_t> run;
  std::unordered_map<std::uint64_t, int> by_seq;  // keyed access only
};

PSN_HOT std::uint64_t hot_pop(Calendar& c) {
  const std::uint64_t seq = c.run.front();
  c.run.pop_front();
  c.by_seq.erase(seq);  // lookup/erase by key: deterministic, no iteration
  return seq;
}

std::uint64_t drive(Calendar& c, Rng& rng, std::size_t rounds) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < rounds; i++) {
    const std::uint64_t seq = rng.next();
    c.run.push_back(seq);
    c.by_seq[seq] = static_cast<int>(i);
    acc += hot_pop(c);
  }
  for (std::uint64_t v : c.run) acc += v;  // deque: ordered, legal
  return acc;
}
