// Fixture: allocating operations inside PSN_HOT bodies. PSN_HOT is defined
// by common/hot.hpp in the real tree; the fixture only needs the token.
#include <memory>
#include <string>
#include <vector>

#define PSN_HOT __attribute__((hot))

struct Slab {
  std::vector<std::unique_ptr<int[]>> blocks;
  std::vector<int*> free_list;
};

PSN_HOT int* hot_acquire(Slab& s) {
  if (s.free_list.empty()) {
    int* raw = new int[64];                        // FLAG: new
    auto block = std::make_unique<int[]>(64);      // FLAG: make_unique
    std::string label = std::to_string(64);        // FLAG: to_string
    (void)raw;
    (void)label;
  }
  int* p = s.free_list.back();
  s.free_list.pop_back();
  return p;
}

PSN_HOT void hot_grow_once(Slab& s) {
  // Growth is warmup, never steady state. psn-lint: allow(psn-hot-path-alloc)
  s.blocks.push_back(std::make_unique<int[]>(64));
}

// Not annotated: allocation is fine here, the check must stay quiet.
int* cold_acquire() { return new int[64]; }
