// Fixture: range-for over unordered containers on an output-feeding path
// (testdata mirrors src/check/, which is in scope).
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

struct Report {
  std::unordered_map<int, double> by_seq;
  std::map<int, double> ordered;
  std::vector<double> order;
};

double emit(const Report& r) {
  double sum = 0;
  for (const auto& [seq, v] : r.by_seq) {  // FLAG: hash order feeds output
    sum += v;
  }
  for (const auto& [seq, v] : r.ordered) {  // std::map — deterministic, legal
    sum += v;
  }
  for (double v : r.order) {  // vector — deterministic, legal
    sum += v;
  }
  // Key-only lookups into unordered containers are always legal; and an
  // iteration whose order provably cannot reach output may be suppressed:
  // psn-lint: allow(psn-determinism)
  for (const auto& [seq, v] : r.by_seq) sum -= v;
  return sum;
}
