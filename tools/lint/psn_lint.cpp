// psn_lint — project-specific static checks for the psn codebase
// (DESIGN.md §13). Three checks, each encoding an invariant the ordinary
// toolchain cannot express:
//
//   psn-determinism     A simulation run must be a pure function of seed and
//                       configuration. Ambient nondeterminism — wall clocks,
//                       libc randomness, the environment — is banned from
//                       src/{sim,core,clocks,net,check,world}; and code on
//                       output-feeding paths must not iterate unordered
//                       containers with a range-for (hash order varies per
//                       process, so exports/metrics/verdicts would too).
//
//   psn-hot-path-alloc  A function annotated PSN_HOT (common/hot.hpp)
//                       claims an allocation-free steady state; its body
//                       must not contain the obviously-allocating calls
//                       (new/delete, malloc family, make_unique/shared,
//                       to_string, stringstreams, std::function). The
//                       dynamic half of the contract is the alloc-guard
//                       suite (`ctest -L lint`).
//
//   psn-locale-safe-io  Float text in src/serve and src/analysis/export is
//                       wire format, not UI: it must round-trip under any
//                       process locale. Only the repo's json_fixed /
//                       json_general / from_chars paths are allowed —
//                       strtod/atof/sscanf/printf-family formatting are not.
//
// Implementation: a dependency-free token-level analyzer. The container
// ships no libclang/clang-tidy development kit, so the frontend is a small
// C++ lexer (comments, strings, raw strings, char literals, continuations,
// preprocessor lines) plus per-check token scans; tools/lint/CMakeLists.txt
// probes for libclang and records the result so an AST-backed frontend can
// slot in when the toolchain gains one. Token-level is deliberately
// conservative: it flags call-shaped uses only (identifier followed by '(' ,
// not preceded by '.', '->', or a non-std qualifier), so member functions
// named `clock` or variables named `time` do not trip it.
//
// Suppressions, for sanctioned exceptions (same syntax as the checks
// report): a comment containing
//     psn-lint: allow(check-name[, check-name...])
// silences those checks on the comment's line and the one after it;
//     psn-lint: allow-file(check-name[, ...])
// silences them for the whole file. Every suppression should say why.
//
// Usage: psn_lint [--root <dir>] <file>...
// Output: <path>:<line>: [<check>] <message>, sorted; exit 0 when clean,
// 1 with findings, 2 on usage/IO errors.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;      ///< line the comment starts on
  std::string text;
};

struct LexResult {
  std::vector<Tok> tokens;
  std::vector<Comment> comments;
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// Lexes enough C++ to scan safely: tokens never come from comments,
/// string/char literals, or preprocessor lines (so `#include <ctime>` and
/// the `#define PSN_HOT ...` line itself are invisible to the checks).
LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  const auto newline = [&] { line++; at_line_start = true; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      i++;
      continue;
    }
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {  // continuation
      line++;
      i += 2;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::string text;
      i += 2;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          line++;
          i += 2;
          continue;
        }
        text.push_back(src[i++]);
      }
      out.comments.push_back({start_line, std::move(text)});
      at_line_start = false;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::string text;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') line++;
        text.push_back(src[i++]);
      }
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back({start_line, std::move(text)});
      at_line_start = false;
      continue;
    }
    if (c == '#' && at_line_start) {  // preprocessor directive: skip the line
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          line++;
          i += 2;
          continue;
        }
        // Comments may trail a directive and still carry suppressions.
        if (src[i] == '/' && i + 1 < n &&
            (src[i + 1] == '/' || src[i + 1] == '*')) {
          break;
        }
        i++;
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {  // raw string
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, j);
      const std::size_t stop = (end == std::string::npos) ? n : end + close.size();
      out.tokens.push_back({TokKind::kString, "<raw>", line});
      for (std::size_t k = i; k < stop; k++) {
        if (src[k] == '\n') line++;
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) j++;
        if (src[j] == '\n') line++;
        j++;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "<lit>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) j++;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        j++;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; '::' and '->' matter to the checks, keep them fused.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    i++;
  }
  return out;
}

// --------------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_wide;
  std::map<int, std::set<std::string>> by_line;  ///< line -> silenced checks

  bool allows(const std::string& check, int line) const {
    if (file_wide.contains(check)) return true;
    // allow(...) covers its own line and the next (NOLINTNEXTLINE-style).
    for (int l : {line, line - 1}) {
      const auto it = by_line.find(l);
      if (it != by_line.end() && it->second.contains(check)) return true;
    }
    return false;
  }
};

void parse_allow_list(const std::string& body, std::set<std::string>& into) {
  std::string name;
  for (const char c : body) {
    if (ident_char(c) || c == '-') {
      name.push_back(c);
    } else {
      if (!name.empty()) into.insert(name);
      name.clear();
    }
  }
  if (!name.empty()) into.insert(name);
}

Suppressions collect_suppressions(const std::vector<Comment>& comments) {
  Suppressions s;
  for (const Comment& c : comments) {
    const std::size_t at = c.text.find("psn-lint:");
    if (at == std::string::npos) continue;
    const std::string rest = c.text.substr(at + 9);
    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string kw = rest.substr(0, open);
    const std::string body = rest.substr(open + 1, close - open - 1);
    if (kw.find("allow-file") != std::string::npos) {
      parse_allow_list(body, s.file_wide);
    } else if (kw.find("allow") != std::string::npos) {
      parse_allow_list(body, s.by_line[c.line]);
    }
  }
  return s;
}

// --------------------------------------------------------------------------
// Findings + path scoping
// --------------------------------------------------------------------------

struct Finding {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;

  bool operator<(const Finding& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return message < o.message;
  }
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_any(std::string_view path, const std::vector<std::string_view>& dirs) {
  return std::any_of(dirs.begin(), dirs.end(), [&](std::string_view d) {
    return starts_with(path, d);
  });
}

/// Scope of the ambient-nondeterminism scan: everything a simulation result
/// flows through.
const std::vector<std::string_view> kDeterminismDirs = {
    "src/sim/", "src/core/", "src/clocks/", "src/net/", "src/check/",
    "src/world/"};

/// Output-feeding paths: bytes produced here reach exports, metrics dumps,
/// traces, or check verdicts, so iteration order is output order.
const std::vector<std::string_view> kOutputFeedingPaths = {
    "src/analysis/export", "src/analysis/sweep", "src/common/metrics",
    "src/common/table",    "src/sim/trace",      "src/check/",
    "src/serve/",          "src/core/lattice",
    // The sharded runner's merge paths (outbox exchange, root-log merge,
    // trace concatenation) define cross-shard event order — hash-order
    // iteration there would make results depend on the process, not the
    // seed (DESIGN.md §14).
    "src/sim/sharded", "src/core/sharded_system", "src/net/shard_map",
    // The fault layer (DESIGN.md §15): fault-plan compilation orders trace
    // records and partition transitions, and the transport/overlay
    // partition-epoch replay decides per-message drops — iteration order
    // there is drop order, which is output order.
    "src/sim/fault", "src/net/transport", "src/net/overlay"};

const std::vector<std::string_view> kLocaleSafeDirs = {"src/serve/",
                                                       "src/analysis/export"};

// --------------------------------------------------------------------------
// Check 1: psn-determinism
// --------------------------------------------------------------------------

const std::set<std::string, std::less<>> kBannedAnywhere = {
    "system_clock", "random_device"};
const std::set<std::string, std::less<>> kBannedEnv = {"getenv", "setenv",
                                                       "putenv", "unsetenv"};
/// Banned only in call position (`name(`), and only unqualified or
/// std-qualified — `rng.clock()` or `legacy::time()` are someone else's.
const std::set<std::string, std::less<>> kBannedCalls = {
    "time",      "rand",         "srand",  "clock",       "gettimeofday",
    "localtime", "gmtime",       "mktime", "timespec_get", "clock_gettime",
    "drand48",   "lrand48",      "random", "srandom"};

const std::set<std::string, std::less<>> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// True when `prev` cannot precede a plain function call — everything else
/// (operators, '(', ',', '{', 'return', ...) can.
bool prev_blocks_call(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0) return false;
  const Tok& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdent) {
    // A declaration (`SimTime time(0)`) — unless it's a keyword that can
    // legally precede a call expression.
    static const std::set<std::string, std::less<>> kExprKeywords = {
        "return", "co_return", "co_yield", "case", "else", "do"};
    return !kExprKeywords.contains(prev.text);
  }
  if (prev.text == "." || prev.text == "->") return true;
  if (prev.text == "::") {
    if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
      return toks[i - 2].text != "std";
    }
    return false;  // leading `::` — the global entity, banned
  }
  return false;
}

void check_determinism(const std::string& path, const std::vector<Tok>& toks,
                       const Suppressions& sup, std::vector<Finding>& out) {
  static const std::string kCheck = "psn-determinism";
  const bool scan_ambient = in_any(path, kDeterminismDirs);
  const bool scan_range_for = in_any(path, kOutputFeedingPaths);
  if (!scan_ambient && !scan_range_for) return;

  if (scan_ambient) {
    for (std::size_t i = 0; i < toks.size(); i++) {
      const Tok& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (sup.allows(kCheck, t.line)) continue;
      if (kBannedAnywhere.contains(t.text)) {
        out.push_back({path, t.line, kCheck,
                       t.text + " is ambient nondeterminism; derive from the "
                               "run's seeded Rng / simulated clock instead"});
        continue;
      }
      const bool call_like =
          i + 1 < toks.size() && toks[i + 1].text == "(";
      if (!call_like) continue;
      if (kBannedEnv.contains(t.text) && !prev_blocks_call(toks, i)) {
        out.push_back({path, t.line, kCheck,
                       t.text + "() reads the ambient environment; thread "
                               "configuration through SimConfig instead"});
        continue;
      }
      if (kBannedCalls.contains(t.text) && !prev_blocks_call(toks, i)) {
        out.push_back({path, t.line, kCheck,
                       t.text + "() is wall-clock/libc nondeterminism; use "
                               "Simulation::now() or a seeded Rng"});
      }
    }
  }

  if (scan_range_for) {
    // Names declared as unordered containers in this file (member or local:
    // `std::unordered_map<K, V> name;` — the token after the closing '>').
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < toks.size(); i++) {
      if (toks[i].kind != TokKind::kIdent ||
          !kUnorderedContainers.contains(toks[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        int depth = 0;
        for (; j < toks.size(); j++) {
          if (toks[j].text == "<") depth++;
          if (toks[j].text == ">" && --depth == 0) {
            j++;
            break;
          }
        }
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        unordered_names.insert(toks[j].text);
      }
    }
    for (std::size_t i = 0; i + 1 < toks.size(); i++) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      const int for_line = toks[i].line;
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); j++) {
        if (toks[j].text == "(") depth++;
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // not a range-for
      for (std::size_t j = colon + 1; j < close; j++) {
        if (toks[j].kind == TokKind::kIdent &&
            unordered_names.contains(toks[j].text)) {
          if (!sup.allows(kCheck, for_line)) {
            out.push_back(
                {path, for_line, kCheck,
                 "range-for over unordered container '" + toks[j].text +
                     "' on an output-feeding path: hash order is not "
                     "deterministic across processes — iterate a sorted "
                     "view or keep a side order"});
          }
          break;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Check 2: psn-hot-path-alloc
// --------------------------------------------------------------------------

const std::set<std::string, std::less<>> kAllocCalls = {
    "malloc",        "calloc",      "realloc",    "strdup",     "strndup",
    "aligned_alloc", "posix_memalign"};
const std::set<std::string, std::less<>> kAllocTemplates = {
    "make_unique", "make_shared", "to_string"};
const std::set<std::string, std::less<>> kStreamTypes = {
    "ostringstream", "stringstream", "istringstream"};

void check_hot_path_alloc(const std::string& path,
                          const std::vector<Tok>& toks,
                          const Suppressions& sup, std::vector<Finding>& out) {
  static const std::string kCheck = "psn-hot-path-alloc";
  if (!starts_with(path, "src/")) return;
  for (std::size_t i = 0; i < toks.size(); i++) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "PSN_HOT") continue;
    // The annotated definition's body: the first '{' before any ';' (a ';'
    // first would make it a declaration — nothing to scan).
    std::size_t body = i + 1;
    int paren = 0;
    for (; body < toks.size(); body++) {
      if (toks[body].text == "(") paren++;
      if (toks[body].text == ")") paren--;
      if (paren == 0 && toks[body].text == ";") {
        body = toks.size();
        break;
      }
      if (paren == 0 && toks[body].text == "{") break;
    }
    if (body >= toks.size()) continue;
    int depth = 0;
    for (std::size_t j = body; j < toks.size(); j++) {
      const Tok& t = toks[j];
      if (t.text == "{") depth++;
      if (t.text == "}" && --depth == 0) break;
      if (t.kind != TokKind::kIdent) continue;
      if (sup.allows(kCheck, t.line)) continue;
      std::string why;
      if (t.text == "new" || t.text == "delete") {
        why = "'" + t.text + "' touches the global allocator";
      } else if (kAllocCalls.contains(t.text) && j + 1 < toks.size() &&
                 toks[j + 1].text == "(") {
        why = t.text + "() allocates";
      } else if (kAllocTemplates.contains(t.text) && j + 1 < toks.size() &&
                 (toks[j + 1].text == "(" || toks[j + 1].text == "<")) {
        why = t.text + " allocates";
      } else if (kStreamTypes.contains(t.text)) {
        why = t.text + " buffers on the heap";
      } else if (t.text == "function" && j >= 1 && toks[j - 1].text == "::" &&
                 j >= 2 && toks[j - 2].text == "std") {
        why = "std::function may heap-allocate its target; use InlineFn";
      }
      if (!why.empty()) {
        out.push_back({path, t.line, kCheck,
                       why + " inside a PSN_HOT function — hot paths pin an "
                             "allocation-free steady state (alloc-guard "
                             "suite); hoist it or justify a suppression"});
      }
    }
  }
}

// --------------------------------------------------------------------------
// Check 3: psn-locale-safe-io
// --------------------------------------------------------------------------

const std::set<std::string, std::less<>> kLocaleSensitive = {
    "strtod",   "strtof",  "strtold",  "atof",     "stod",      "stof",
    "stold",    "sscanf",  "vsscanf",  "fscanf",   "scanf",     "printf",
    "fprintf",  "sprintf", "snprintf", "vsprintf", "vsnprintf", "vprintf",
    "setprecision", "setlocale"};

void check_locale_safe_io(const std::string& path, const std::vector<Tok>& toks,
                          const Suppressions& sup, std::vector<Finding>& out) {
  static const std::string kCheck = "psn-locale-safe-io";
  if (!in_any(path, kLocaleSafeDirs)) return;
  for (std::size_t i = 0; i < toks.size(); i++) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent || !kLocaleSensitive.contains(t.text)) {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    if (prev_blocks_call(toks, i)) continue;
    if (sup.allows(kCheck, t.line)) continue;
    out.push_back({path, t.line, kCheck,
                   t.text + "() is locale-sensitive; wire float text must "
                           "round-trip under any locale — use json_fixed/"
                           "json_general/from_chars (common/format)"});
  }
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

std::string relative_to(const std::string& root, const std::string& path) {
  std::string p = path;
  while (starts_with(p, "./")) p = p.substr(2);
  if (!root.empty()) {
    std::string r = root;
    if (r.back() != '/') r.push_back('/');
    if (starts_with(p, r)) p = p.substr(r.size());
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  for (int a = 1; a < argc; a++) {
    const std::string arg = argv[a];
    if (arg == "--root") {
      if (a + 1 >= argc) {
        std::cerr << "psn_lint: --root needs a value\n";
        return 2;
      }
      root = argv[++a];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: psn_lint [--root <dir>] <file>...\n"
                   "checks: psn-determinism, psn-hot-path-alloc, "
                   "psn-locale-safe-io\n";
      return 0;
    } else if (starts_with(arg, "--")) {
      std::cerr << "psn_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "psn_lint: no input files (usage: psn_lint [--root <dir>] "
                 "<file>...)\n";
    return 2;
  }

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "psn_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();
    const std::string rel = relative_to(root, file);

    const LexResult lexed = lex(src);
    const Suppressions sup = collect_suppressions(lexed.comments);
    check_determinism(rel, lexed.tokens, sup, findings);
    check_hot_path_alloc(rel, lexed.tokens, sup, findings);
    check_locale_safe_io(rel, lexed.tokens, sup, findings);
  }

  std::sort(findings.begin(), findings.end());
  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
